#include "tensor/matrix_ops.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "kernels/elementwise.h"
#include "kernels/matmul.h"
#include "runtime/parallel_for.h"

namespace scis {

namespace {
constexpr double kLogFloor = 1e-300;

// Elementwise kernels parallelize over disjoint flat ranges (disjoint writes,
// per-element arithmetic unchanged → bit-identical at any thread count).
// Scalar reductions (Sum, Dot, norms) go through the fixed-lane kernels in
// src/kernels: their association is a function of the span length alone, so
// they stay bit-identical at any thread count while vectorizing. (This
// re-associated them once relative to the pre-kernel seed numerics; the
// goldens were regenerated for that drift.)
Matrix BinaryOp(const Matrix& a, const Matrix& b, double (*op)(double, double)) {
  SCIS_CHECK_MSG(a.SameShape(b), "elementwise op shape mismatch");
  Matrix out(a.rows(), a.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  runtime::ParallelFor(0, a.size(), runtime::GrainForWork(a.size(), 1),
                       [&](size_t kb, size_t ke) {
                         for (size_t k = kb; k < ke; ++k)
                           po[k] = op(pa[k], pb[k]);
                       });
  return out;
}
// Packs the right-hand side into column panels (parallel over panels), the
// once-per-multiply setup both packed matmul kernels share.
std::vector<double> PackRhs(const double* b, size_t k, size_t n) {
  std::vector<double> bp(kernels::PackedSize(k, n));
  const size_t tiles = kernels::NumPanels(n);
  runtime::ParallelFor(0, tiles,
                       runtime::GrainForWork(tiles, k * kernels::kColTile),
                       [&](size_t t0, size_t t1) {
                         kernels::PackPanels(b, k, n, t0, t1, bp.data());
                       });
  return bp;
}
std::vector<double> PackRhs(const Matrix& b, size_t k, size_t n) {
  return PackRhs(b.data(), k, n);
}

}  // namespace

// The three matmul variants run the register-tiled kernels from
// src/kernels/matmul.h over output-row chunks. Grains are shape-derived and
// rounded to the row-tile size so chunk boundaries coincide with tile
// boundaries; per-element accumulation order is unchanged from the historic
// kernels (see matmul.h for the exact determinism/drift statement).
Matrix MatMulView(const Matrix& a, const double* b, size_t k, size_t n) {
  SCIS_CHECK_MSG(a.cols() == k, "MatMul inner dimension mismatch");
  Matrix out(a.rows(), n);
  const size_t m = a.rows();
  const std::vector<double> bp = PackRhs(b, k, n);
  const size_t grain =
      kernels::RowAlignedGrain(runtime::GrainForWork(m, k * n));
  runtime::ParallelFor(0, m, grain, [&](size_t i0, size_t i1) {
    kernels::MatMulRowsPacked(a.data(), bp.data(), out.data(), i0, i1, k, n);
  });
  return out;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  return MatMulView(a, b.data(), b.rows(), b.cols());
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  SCIS_CHECK_MSG(a.rows() == b.rows(), "MatMulTransA dimension mismatch");
  Matrix out(a.cols(), b.cols());
  const size_t m = a.cols(), k = a.rows(), n = b.cols();
  const std::vector<double> bp = PackRhs(b, k, n);
  const size_t grain =
      kernels::RowAlignedGrain(runtime::GrainForWork(m, k * n));
  runtime::ParallelFor(0, m, grain, [&](size_t i0, size_t i1) {
    kernels::MatMulTransARowsPacked(a.data(), m, bp.data(), out.data(), i0, i1,
                                    k, n);
  });
  return out;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  SCIS_CHECK_MSG(a.cols() == b.cols(), "MatMulTransB dimension mismatch");
  Matrix out(a.rows(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  const size_t grain =
      kernels::RowAlignedGrain(runtime::GrainForWork(m, k * n));
  runtime::ParallelFor(0, m, grain, [&](size_t i0, size_t i1) {
    kernels::MatMulTransBRows(a.data(), b.data(), out.data(), i0, i1, k, n);
  });
  return out;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  runtime::ParallelFor(0, a.rows(), runtime::GrainForWork(a.rows(), a.cols()),
                       [&](size_t r0, size_t r1) {
    kernels::TransposeScaleRows(a.data(), a.rows(), a.cols(), 1.0, out.data(),
                                r0, r1);
  });
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  return BinaryOp(a, b, [](double x, double y) { return x + y; });
}
Matrix Sub(const Matrix& a, const Matrix& b) {
  return BinaryOp(a, b, [](double x, double y) { return x - y; });
}
Matrix Mul(const Matrix& a, const Matrix& b) {
  return BinaryOp(a, b, [](double x, double y) { return x * y; });
}
Matrix Div(const Matrix& a, const Matrix& b) {
  return BinaryOp(a, b, [](double x, double y) { return x / y; });
}

void AddInPlace(Matrix& a, const Matrix& b) {
  SCIS_CHECK(a.SameShape(b));
  double* pa = a.data();
  const double* pb = b.data();
  runtime::ParallelFor(0, a.size(), runtime::GrainForWork(a.size(), 1),
                       [&](size_t kb, size_t ke) {
                         for (size_t k = kb; k < ke; ++k) pa[k] += pb[k];
                       });
}
void SubInPlace(Matrix& a, const Matrix& b) {
  SCIS_CHECK(a.SameShape(b));
  double* pa = a.data();
  const double* pb = b.data();
  runtime::ParallelFor(0, a.size(), runtime::GrainForWork(a.size(), 1),
                       [&](size_t kb, size_t ke) {
                         for (size_t k = kb; k < ke; ++k) pa[k] -= pb[k];
                       });
}
void MulInPlace(Matrix& a, const Matrix& b) {
  SCIS_CHECK(a.SameShape(b));
  double* pa = a.data();
  const double* pb = b.data();
  runtime::ParallelFor(0, a.size(), runtime::GrainForWork(a.size(), 1),
                       [&](size_t kb, size_t ke) {
                         for (size_t k = kb; k < ke; ++k) pa[k] *= pb[k];
                       });
}
void AxpyInPlace(Matrix& a, double alpha, const Matrix& b) {
  SCIS_CHECK(a.SameShape(b));
  double* pa = a.data();
  const double* pb = b.data();
  runtime::ParallelFor(0, a.size(), runtime::GrainForWork(a.size(), 1),
                       [&](size_t kb, size_t ke) {
                         kernels::Axpy(alpha, pb + kb, pa + kb, ke - kb);
                       });
}

Matrix AddScalar(const Matrix& a, double s) {
  Matrix out = a;
  double* p = out.data();
  runtime::ParallelFor(0, out.size(), runtime::GrainForWork(out.size(), 1),
                       [&](size_t kb, size_t ke) {
                         for (size_t k = kb; k < ke; ++k) p[k] += s;
                       });
  return out;
}
Matrix MulScalar(const Matrix& a, double s) {
  Matrix out = a;
  MulScalarInPlace(out, s);
  return out;
}
void MulScalarInPlace(Matrix& a, double s) {
  double* p = a.data();
  runtime::ParallelFor(0, a.size(), runtime::GrainForWork(a.size(), 1),
                       [&](size_t kb, size_t ke) {
                         for (size_t k = kb; k < ke; ++k) p[k] *= s;
                       });
}

Matrix AddRowBroadcastView(const Matrix& a, const double* row) {
  Matrix out = a;
  runtime::ParallelFor(0, a.rows(), runtime::GrainForWork(a.rows(), a.cols()),
                       [&](size_t ib, size_t ie) {
    for (size_t i = ib; i < ie; ++i) {
      double* p = out.row_data(i);
      for (size_t j = 0; j < a.cols(); ++j) p[j] += row[j];
    }
  });
  return out;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  SCIS_CHECK(row.rows() == 1 && row.cols() == a.cols());
  return AddRowBroadcastView(a, row.data());
}

Matrix MulRowBroadcast(const Matrix& a, const Matrix& row) {
  SCIS_CHECK(row.rows() == 1 && row.cols() == a.cols());
  Matrix out = a;
  runtime::ParallelFor(0, a.rows(), runtime::GrainForWork(a.rows(), a.cols()),
                       [&](size_t ib, size_t ie) {
    for (size_t i = ib; i < ie; ++i) {
      double* p = out.row_data(i);
      const double* r = row.data();
      for (size_t j = 0; j < a.cols(); ++j) p[j] *= r[j];
    }
  });
  return out;
}

Matrix AddColBroadcast(const Matrix& a, const Matrix& col) {
  SCIS_CHECK(col.cols() == 1 && col.rows() == a.rows());
  Matrix out = a;
  runtime::ParallelFor(0, a.rows(), runtime::GrainForWork(a.rows(), a.cols()),
                       [&](size_t ib, size_t ie) {
    for (size_t i = ib; i < ie; ++i) {
      double* p = out.row_data(i);
      const double c = col(i, 0);
      for (size_t j = 0; j < a.cols(); ++j) p[j] += c;
    }
  });
  return out;
}

namespace {
// Inlined-callable Map: cheap per-element lambdas (relu, square, clamp)
// compile to straight loops here instead of paying a std::function call per
// element. The public std::function Map below routes through this too.
template <typename F>
Matrix UnaryOp(const Matrix& a, F&& f) {
  Matrix out(a.rows(), a.cols());
  const double* pa = a.data();
  double* po = out.data();
  // Transcendental maps (exp, log, sigmoid) dominate NN activations; assume
  // a few ops per element so mid-sized batches still fan out.
  runtime::ParallelFor(0, a.size(), runtime::GrainForWork(a.size(), 8),
                       [&](size_t kb, size_t ke) {
                         for (size_t k = kb; k < ke; ++k) po[k] = f(pa[k]);
                       });
  return out;
}
}  // namespace

Matrix Map(const Matrix& a, const std::function<double(double)>& f) {
  return UnaryOp(a, f);
}

Matrix Sigmoid(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  const double* pa = a.data();
  double* po = out.data();
  runtime::ParallelFor(0, a.size(), runtime::GrainForWork(a.size(), 8),
                       [&](size_t kb, size_t ke) {
                         kernels::SigmoidArray(pa + kb, po + kb, ke - kb);
                       });
  return out;
}
Matrix Relu(const Matrix& a) {
  return UnaryOp(a, [](double x) { return x > 0 ? x : 0.0; });
}
Matrix Tanh(const Matrix& a) {
  return UnaryOp(a, [](double x) { return std::tanh(x); });
}
Matrix Exp(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  const double* pa = a.data();
  double* po = out.data();
  runtime::ParallelFor(0, a.size(), runtime::GrainForWork(a.size(), 8),
                       [&](size_t kb, size_t ke) {
                         kernels::ExpArray(pa + kb, po + kb, ke - kb);
                       });
  return out;
}
Matrix Log(const Matrix& a) {
  return UnaryOp(a, [](double x) { return std::log(std::max(x, kLogFloor)); });
}
Matrix Sqrt(const Matrix& a) {
  return UnaryOp(a, [](double x) { return std::sqrt(x); });
}
Matrix Square(const Matrix& a) {
  return UnaryOp(a, [](double x) { return x * x; });
}
Matrix Abs(const Matrix& a) {
  return UnaryOp(a, [](double x) { return std::abs(x); });
}
Matrix Clamp(const Matrix& a, double lo, double hi) {
  return UnaryOp(a, [lo, hi](double x) { return std::clamp(x, lo, hi); });
}

double Sum(const Matrix& a) { return kernels::Sum(a.data(), a.size()); }
double Mean(const Matrix& a) {
  SCIS_CHECK_GT(a.size(), 0u);
  return Sum(a) / static_cast<double>(a.size());
}
double MinValue(const Matrix& a) {
  SCIS_CHECK_GT(a.size(), 0u);
  return *std::min_element(a.data(), a.data() + a.size());
}
double MaxValue(const Matrix& a) {
  SCIS_CHECK_GT(a.size(), 0u);
  return *std::max_element(a.data(), a.data() + a.size());
}
double FrobeniusNorm(const Matrix& a) {
  return std::sqrt(kernels::SquaredNorm(a.data(), a.size()));
}
double Dot(const Matrix& a, const Matrix& b) {
  SCIS_CHECK(a.SameShape(b));
  return kernels::Dot(a.data(), b.data(), a.size());
}

Matrix RowSum(const Matrix& a) {
  Matrix out(a.rows(), 1);
  runtime::ParallelFor(0, a.rows(), runtime::GrainForWork(a.rows(), a.cols()),
                       [&](size_t ib, size_t ie) {
    for (size_t i = ib; i < ie; ++i) {
      out(i, 0) = kernels::Sum(a.row_data(i), a.cols());
    }
  });
  return out;
}
Matrix ColSum(const Matrix& a) {
  Matrix out(1, a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* p = a.row_data(i);
    double* o = out.data();
    for (size_t j = 0; j < a.cols(); ++j) o[j] += p[j];
  }
  return out;
}
Matrix RowMean(const Matrix& a) {
  SCIS_CHECK_GT(a.cols(), 0u);
  Matrix out = RowSum(a);
  MulScalarInPlace(out, 1.0 / static_cast<double>(a.cols()));
  return out;
}
Matrix ColMean(const Matrix& a) {
  SCIS_CHECK_GT(a.rows(), 0u);
  Matrix out = ColSum(a);
  MulScalarInPlace(out, 1.0 / static_cast<double>(a.rows()));
  return out;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  SCIS_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    std::copy(a.row_data(i), a.row_data(i) + a.cols(), out.row_data(i));
    std::copy(b.row_data(i), b.row_data(i) + b.cols(),
              out.row_data(i) + a.cols());
  }
  return out;
}

Matrix ConcatRows(const Matrix& a, const Matrix& b) {
  SCIS_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows() + b.rows(), a.cols());
  std::copy(a.data(), a.data() + a.size(), out.data());
  std::copy(b.data(), b.data() + b.size(), out.data() + a.size());
  return out;
}

Matrix PairwiseSquaredDistances(const Matrix& a, const Matrix& b) {
  SCIS_CHECK_EQ(a.cols(), b.cols());
  const size_t n = a.rows(), m = b.rows(), d = a.cols();
  std::vector<double> a2(n, 0.0), b2(m, 0.0);
  runtime::ParallelFor(0, n, runtime::GrainForWork(n, d),
                       [&](size_t ib, size_t ie) {
    for (size_t i = ib; i < ie; ++i) {
      a2[i] = kernels::SquaredNorm(a.row_data(i), d);
    }
  });
  runtime::ParallelFor(0, m, runtime::GrainForWork(m, d),
                       [&](size_t ib, size_t ie) {
    for (size_t i = ib; i < ie; ++i) {
      b2[i] = kernels::SquaredNorm(b.row_data(i), d);
    }
  });
  Matrix out = MatMulTransB(a, b);
  runtime::ParallelFor(0, n, runtime::GrainForWork(n, m),
                       [&](size_t ib, size_t ie) {
    for (size_t i = ib; i < ie; ++i) {
      double* p = out.row_data(i);
      for (size_t j = 0; j < m; ++j) {
        p[j] = std::max(a2[i] + b2[j] - 2.0 * p[j], 0.0);
      }
    }
  });
  return out;
}

}  // namespace scis
