#include "tensor/matrix_ops.h"

#include <algorithm>
#include <cmath>

#include "runtime/parallel_for.h"

namespace scis {

namespace {
constexpr double kLogFloor = 1e-300;

// Elementwise kernels parallelize over disjoint flat ranges (disjoint writes,
// per-element arithmetic unchanged → bit-identical at any thread count).
// Scalar reductions (Sum, Dot, norms) stay serial: re-associating them would
// change results relative to the established seed numerics for no hot-path
// win — they are memory-bound.
Matrix BinaryOp(const Matrix& a, const Matrix& b, double (*op)(double, double)) {
  SCIS_CHECK_MSG(a.SameShape(b), "elementwise op shape mismatch");
  Matrix out(a.rows(), a.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  runtime::ParallelFor(0, a.size(), runtime::GrainForWork(a.size(), 1),
                       [&](size_t kb, size_t ke) {
                         for (size_t k = kb; k < ke; ++k)
                           po[k] = op(pa[k], pb[k]);
                       });
  return out;
}
}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  SCIS_CHECK_MSG(a.cols() == b.rows(), "MatMul inner dimension mismatch");
  Matrix out(a.rows(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  // ikj loop order: streams through b and out rows contiguously. Output rows
  // are independent, so the i-loop parallelizes with unchanged per-row
  // arithmetic.
  runtime::ParallelFor(0, m, runtime::GrainForWork(m, k * n),
                       [&](size_t ib, size_t ie) {
    for (size_t i = ib; i < ie; ++i) {
      double* orow = out.row_data(i);
      const double* arow = a.row_data(i);
      for (size_t p = 0; p < k; ++p) {
        const double av = arow[p];
        if (av == 0.0) continue;
        const double* brow = b.row_data(p);
        for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  });
  return out;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  SCIS_CHECK_MSG(a.rows() == b.rows(), "MatMulTransA dimension mismatch");
  Matrix out(a.cols(), b.cols());
  const size_t m = a.cols(), k = a.rows(), n = b.cols();
  // i-outer (output rows) so rows parallelize; the p-accumulation order per
  // output element matches the previous p-outer form, keeping results
  // bit-identical to the serial kernel.
  runtime::ParallelFor(0, m, runtime::GrainForWork(m, k * n),
                       [&](size_t ib, size_t ie) {
    for (size_t i = ib; i < ie; ++i) {
      double* orow = out.row_data(i);
      for (size_t p = 0; p < k; ++p) {
        const double av = a(p, i);
        if (av == 0.0) continue;
        const double* brow = b.row_data(p);
        for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  });
  return out;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  SCIS_CHECK_MSG(a.cols() == b.cols(), "MatMulTransB dimension mismatch");
  Matrix out(a.rows(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  runtime::ParallelFor(0, m, runtime::GrainForWork(m, k * n),
                       [&](size_t ib, size_t ie) {
    for (size_t i = ib; i < ie; ++i) {
      const double* arow = a.row_data(i);
      double* orow = out.row_data(i);
      for (size_t j = 0; j < n; ++j) {
        const double* brow = b.row_data(j);
        double acc = 0.0;
        for (size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        orow[j] = acc;
      }
    }
  });
  return out;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  runtime::ParallelFor(0, a.rows(), runtime::GrainForWork(a.rows(), a.cols()),
                       [&](size_t ib, size_t ie) {
    for (size_t i = ib; i < ie; ++i)
      for (size_t j = 0; j < a.cols(); ++j) out(j, i) = a(i, j);
  });
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  return BinaryOp(a, b, [](double x, double y) { return x + y; });
}
Matrix Sub(const Matrix& a, const Matrix& b) {
  return BinaryOp(a, b, [](double x, double y) { return x - y; });
}
Matrix Mul(const Matrix& a, const Matrix& b) {
  return BinaryOp(a, b, [](double x, double y) { return x * y; });
}
Matrix Div(const Matrix& a, const Matrix& b) {
  return BinaryOp(a, b, [](double x, double y) { return x / y; });
}

void AddInPlace(Matrix& a, const Matrix& b) {
  SCIS_CHECK(a.SameShape(b));
  double* pa = a.data();
  const double* pb = b.data();
  runtime::ParallelFor(0, a.size(), runtime::GrainForWork(a.size(), 1),
                       [&](size_t kb, size_t ke) {
                         for (size_t k = kb; k < ke; ++k) pa[k] += pb[k];
                       });
}
void SubInPlace(Matrix& a, const Matrix& b) {
  SCIS_CHECK(a.SameShape(b));
  double* pa = a.data();
  const double* pb = b.data();
  runtime::ParallelFor(0, a.size(), runtime::GrainForWork(a.size(), 1),
                       [&](size_t kb, size_t ke) {
                         for (size_t k = kb; k < ke; ++k) pa[k] -= pb[k];
                       });
}
void MulInPlace(Matrix& a, const Matrix& b) {
  SCIS_CHECK(a.SameShape(b));
  double* pa = a.data();
  const double* pb = b.data();
  runtime::ParallelFor(0, a.size(), runtime::GrainForWork(a.size(), 1),
                       [&](size_t kb, size_t ke) {
                         for (size_t k = kb; k < ke; ++k) pa[k] *= pb[k];
                       });
}
void AxpyInPlace(Matrix& a, double alpha, const Matrix& b) {
  SCIS_CHECK(a.SameShape(b));
  double* pa = a.data();
  const double* pb = b.data();
  runtime::ParallelFor(0, a.size(), runtime::GrainForWork(a.size(), 1),
                       [&](size_t kb, size_t ke) {
                         for (size_t k = kb; k < ke; ++k)
                           pa[k] += alpha * pb[k];
                       });
}

Matrix AddScalar(const Matrix& a, double s) {
  Matrix out = a;
  double* p = out.data();
  runtime::ParallelFor(0, out.size(), runtime::GrainForWork(out.size(), 1),
                       [&](size_t kb, size_t ke) {
                         for (size_t k = kb; k < ke; ++k) p[k] += s;
                       });
  return out;
}
Matrix MulScalar(const Matrix& a, double s) {
  Matrix out = a;
  MulScalarInPlace(out, s);
  return out;
}
void MulScalarInPlace(Matrix& a, double s) {
  double* p = a.data();
  runtime::ParallelFor(0, a.size(), runtime::GrainForWork(a.size(), 1),
                       [&](size_t kb, size_t ke) {
                         for (size_t k = kb; k < ke; ++k) p[k] *= s;
                       });
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  SCIS_CHECK(row.rows() == 1 && row.cols() == a.cols());
  Matrix out = a;
  runtime::ParallelFor(0, a.rows(), runtime::GrainForWork(a.rows(), a.cols()),
                       [&](size_t ib, size_t ie) {
    for (size_t i = ib; i < ie; ++i) {
      double* p = out.row_data(i);
      const double* r = row.data();
      for (size_t j = 0; j < a.cols(); ++j) p[j] += r[j];
    }
  });
  return out;
}

Matrix MulRowBroadcast(const Matrix& a, const Matrix& row) {
  SCIS_CHECK(row.rows() == 1 && row.cols() == a.cols());
  Matrix out = a;
  runtime::ParallelFor(0, a.rows(), runtime::GrainForWork(a.rows(), a.cols()),
                       [&](size_t ib, size_t ie) {
    for (size_t i = ib; i < ie; ++i) {
      double* p = out.row_data(i);
      const double* r = row.data();
      for (size_t j = 0; j < a.cols(); ++j) p[j] *= r[j];
    }
  });
  return out;
}

Matrix AddColBroadcast(const Matrix& a, const Matrix& col) {
  SCIS_CHECK(col.cols() == 1 && col.rows() == a.rows());
  Matrix out = a;
  runtime::ParallelFor(0, a.rows(), runtime::GrainForWork(a.rows(), a.cols()),
                       [&](size_t ib, size_t ie) {
    for (size_t i = ib; i < ie; ++i) {
      double* p = out.row_data(i);
      const double c = col(i, 0);
      for (size_t j = 0; j < a.cols(); ++j) p[j] += c;
    }
  });
  return out;
}

Matrix Map(const Matrix& a, const std::function<double(double)>& f) {
  Matrix out(a.rows(), a.cols());
  const double* pa = a.data();
  double* po = out.data();
  // Transcendental maps (exp, log, sigmoid) dominate NN activations; assume
  // a few ops per element so mid-sized batches still fan out.
  runtime::ParallelFor(0, a.size(), runtime::GrainForWork(a.size(), 8),
                       [&](size_t kb, size_t ke) {
                         for (size_t k = kb; k < ke; ++k) po[k] = f(pa[k]);
                       });
  return out;
}

Matrix Sigmoid(const Matrix& a) {
  return Map(a, [](double x) {
    // Split on sign to avoid exp overflow.
    return x >= 0 ? 1.0 / (1.0 + std::exp(-x))
                  : std::exp(x) / (1.0 + std::exp(x));
  });
}
Matrix Relu(const Matrix& a) {
  return Map(a, [](double x) { return x > 0 ? x : 0.0; });
}
Matrix Tanh(const Matrix& a) {
  return Map(a, [](double x) { return std::tanh(x); });
}
Matrix Exp(const Matrix& a) {
  return Map(a, [](double x) { return std::exp(x); });
}
Matrix Log(const Matrix& a) {
  return Map(a, [](double x) { return std::log(std::max(x, kLogFloor)); });
}
Matrix Sqrt(const Matrix& a) {
  return Map(a, [](double x) { return std::sqrt(x); });
}
Matrix Square(const Matrix& a) {
  return Map(a, [](double x) { return x * x; });
}
Matrix Abs(const Matrix& a) {
  return Map(a, [](double x) { return std::abs(x); });
}
Matrix Clamp(const Matrix& a, double lo, double hi) {
  return Map(a, [lo, hi](double x) { return std::clamp(x, lo, hi); });
}

double Sum(const Matrix& a) {
  double acc = 0.0;
  const double* p = a.data();
  for (size_t k = 0; k < a.size(); ++k) acc += p[k];
  return acc;
}
double Mean(const Matrix& a) {
  SCIS_CHECK_GT(a.size(), 0u);
  return Sum(a) / static_cast<double>(a.size());
}
double MinValue(const Matrix& a) {
  SCIS_CHECK_GT(a.size(), 0u);
  return *std::min_element(a.data(), a.data() + a.size());
}
double MaxValue(const Matrix& a) {
  SCIS_CHECK_GT(a.size(), 0u);
  return *std::max_element(a.data(), a.data() + a.size());
}
double FrobeniusNorm(const Matrix& a) {
  double acc = 0.0;
  const double* p = a.data();
  for (size_t k = 0; k < a.size(); ++k) acc += p[k] * p[k];
  return std::sqrt(acc);
}
double Dot(const Matrix& a, const Matrix& b) {
  SCIS_CHECK(a.SameShape(b));
  double acc = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  for (size_t k = 0; k < a.size(); ++k) acc += pa[k] * pb[k];
  return acc;
}

Matrix RowSum(const Matrix& a) {
  Matrix out(a.rows(), 1);
  runtime::ParallelFor(0, a.rows(), runtime::GrainForWork(a.rows(), a.cols()),
                       [&](size_t ib, size_t ie) {
    for (size_t i = ib; i < ie; ++i) {
      const double* p = a.row_data(i);
      double acc = 0.0;
      for (size_t j = 0; j < a.cols(); ++j) acc += p[j];
      out(i, 0) = acc;
    }
  });
  return out;
}
Matrix ColSum(const Matrix& a) {
  Matrix out(1, a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* p = a.row_data(i);
    double* o = out.data();
    for (size_t j = 0; j < a.cols(); ++j) o[j] += p[j];
  }
  return out;
}
Matrix RowMean(const Matrix& a) {
  SCIS_CHECK_GT(a.cols(), 0u);
  Matrix out = RowSum(a);
  MulScalarInPlace(out, 1.0 / static_cast<double>(a.cols()));
  return out;
}
Matrix ColMean(const Matrix& a) {
  SCIS_CHECK_GT(a.rows(), 0u);
  Matrix out = ColSum(a);
  MulScalarInPlace(out, 1.0 / static_cast<double>(a.rows()));
  return out;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  SCIS_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    std::copy(a.row_data(i), a.row_data(i) + a.cols(), out.row_data(i));
    std::copy(b.row_data(i), b.row_data(i) + b.cols(),
              out.row_data(i) + a.cols());
  }
  return out;
}

Matrix ConcatRows(const Matrix& a, const Matrix& b) {
  SCIS_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows() + b.rows(), a.cols());
  std::copy(a.data(), a.data() + a.size(), out.data());
  std::copy(b.data(), b.data() + b.size(), out.data() + a.size());
  return out;
}

Matrix PairwiseSquaredDistances(const Matrix& a, const Matrix& b) {
  SCIS_CHECK_EQ(a.cols(), b.cols());
  const size_t n = a.rows(), m = b.rows(), d = a.cols();
  std::vector<double> a2(n, 0.0), b2(m, 0.0);
  runtime::ParallelFor(0, n, runtime::GrainForWork(n, d),
                       [&](size_t ib, size_t ie) {
    for (size_t i = ib; i < ie; ++i) {
      const double* p = a.row_data(i);
      for (size_t j = 0; j < d; ++j) a2[i] += p[j] * p[j];
    }
  });
  runtime::ParallelFor(0, m, runtime::GrainForWork(m, d),
                       [&](size_t ib, size_t ie) {
    for (size_t i = ib; i < ie; ++i) {
      const double* p = b.row_data(i);
      for (size_t j = 0; j < d; ++j) b2[i] += p[j] * p[j];
    }
  });
  Matrix out = MatMulTransB(a, b);
  runtime::ParallelFor(0, n, runtime::GrainForWork(n, m),
                       [&](size_t ib, size_t ie) {
    for (size_t i = ib; i < ie; ++i) {
      double* p = out.row_data(i);
      for (size_t j = 0; j < m; ++j) {
        p[j] = std::max(a2[i] + b2[j] - 2.0 * p[j], 0.0);
      }
    }
  });
  return out;
}

}  // namespace scis
