// Dense row-major matrix of doubles: the numeric workhorse under the
// autodiff tape, optimal-transport solver, and every imputation model.
// Kept deliberately simple (no views, no expression templates): row-major
// contiguous storage so hot kernels in matrix_ops.cc vectorize well.
#ifndef SCIS_TENSOR_MATRIX_H_
#define SCIS_TENSOR_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"

namespace scis {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  // Row-major literal: Matrix({{1,2},{3,4}}).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }
  static Matrix Ones(size_t rows, size_t cols) {
    return Matrix(rows, cols, 1.0);
  }
  static Matrix Full(size_t rows, size_t cols, double v) {
    return Matrix(rows, cols, v);
  }
  static Matrix Identity(size_t n);
  // Wraps an existing flat row-major buffer (copied).
  static Matrix FromFlat(size_t rows, size_t cols, std::vector<double> flat);
  // Single-row / single-column constructors from a vector.
  static Matrix RowVector(const std::vector<double>& v);
  static Matrix ColVector(const std::vector<double>& v);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t i, size_t j) {
    SCIS_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(size_t i, size_t j) const {
    SCIS_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  // Flat element access (row-major order), used by optimizers that treat
  // parameters as one long vector.
  double& operator[](size_t k) {
    SCIS_DCHECK(k < data_.size());
    return data_[k];
  }
  double operator[](size_t k) const {
    SCIS_DCHECK(k < data_.size());
    return data_[k];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row_data(size_t i) { return data_.data() + i * cols_; }
  const double* row_data(size_t i) const { return data_.data() + i * cols_; }

  // Copies of a row / column as plain vectors.
  std::vector<double> Row(size_t i) const;
  std::vector<double> Col(size_t j) const;
  void SetRow(size_t i, const std::vector<double>& v);
  void SetCol(size_t j, const std::vector<double>& v);

  // Returns rows [r0, r1) as a new matrix.
  Matrix RowRange(size_t r0, size_t r1) const;
  // Returns columns [c0, c1) as a new matrix.
  Matrix ColRange(size_t c0, size_t c1) const;
  // Gathers the given rows (indices may repeat) into a new matrix.
  Matrix GatherRows(const std::vector<size_t>& idx) const;

  void Fill(double v) { data_.assign(data_.size(), v); }
  // Reshapes in place; total size must be preserved.
  void Reshape(size_t rows, size_t cols);

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // Exact elementwise equality (tests) and tolerance-based comparison.
  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }
  bool AllClose(const Matrix& other, double atol = 1e-9) const;

  std::string ToString(int max_rows = 8, int max_cols = 8) const;

 private:
  size_t rows_, cols_;
  std::vector<double> data_;
};

}  // namespace scis

#endif  // SCIS_TENSOR_MATRIX_H_
