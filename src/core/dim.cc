#include "core/dim.h"

#include "common/stopwatch.h"
#include "data/sampler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ot/ms_loss.h"

namespace scis {

namespace {

// Cached handles; updates are relaxed atomics (see obs/metrics.h).
struct DimMetrics {
  obs::Counter* epochs;
  obs::Counter* steps;
  obs::Counter* critic_steps;
  obs::Gauge* epoch_loss;
  obs::Gauge* epoch_divergence;
  obs::Histogram* batch_ms;
  obs::Histogram* critic_ms;
  obs::Histogram* gen_step_ms;

  static const DimMetrics& Get() {
    static const DimMetrics m = [] {
      obs::Registry& r = obs::Registry::Global();
      const std::vector<double> ms_bounds{0.5, 1, 2,  5,   10,
                                          20,  50, 100, 250, 1000};
      return DimMetrics{
          r.GetCounter("dim.epochs"),
          r.GetCounter("dim.steps"),
          r.GetCounter("dim.critic_steps"),
          r.GetGauge("dim.epoch_loss"),
          r.GetGauge("dim.epoch_divergence"),
          r.GetHistogram("dim.batch_ms", ms_bounds),
          r.GetHistogram("dim.critic_ms", ms_bounds),
          r.GetHistogram("dim.gen_step_ms", ms_bounds),
      };
    }();
    return m;
  }
};

}  // namespace

DimTrainer::DimTrainer(DimOptions opts)
    : opts_(opts),
      rng_(opts.seed),
      gen_adam_(opts.learning_rate),
      critic_adam_(opts.learning_rate) {}

void DimTrainer::EnsureCritic(size_t d, Rng& rng) {
  if (!opts_.use_critic || critic_) return;
  // tanh-bounded embeddings keep the ground cost within [0, 4d], so the
  // λ=130 Sinkhorn solves converge in a few iterations.
  critic_ = std::make_unique<Mlp>(
      &critic_store_, "dim.critic",
      std::vector<size_t>{d, opts_.critic_hidden, d}, Activation::kRelu,
      Activation::kTanh, rng);
}

Status DimTrainer::Train(GenerativeImputer& model, const Dataset& data) {
  SCIS_TRACE_SPAN("dim.train");
  const DimMetrics& metrics = DimMetrics::Get();
  if (data.num_rows() < 2) {
    return Status::InvalidArgument("DIM needs at least two rows");
  }
  EnsureCritic(data.num_cols(), rng_);
  SinkhornOptions sopts;
  sopts.lambda = opts_.lambda;
  sopts.max_iters = opts_.sinkhorn_iters;
  sopts.tol = 1e-7;
  sopts.rank = opts_.sinkhorn_rank;

  ParamStore& gen_store = model.generator_params();
  MiniBatcher batcher(data.num_rows(), opts_.batch_size, rng_);
  std::vector<size_t> batch;
  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    SCIS_TRACE_SPAN("dim.epoch");
    batcher.Reset(rng_);
    double epoch_loss = 0.0, epoch_div = 0.0;
    size_t batches = 0;
    while (batcher.Next(&batch)) {
      SCIS_TRACE_SPAN("dim.batch");
      Stopwatch batch_watch;
      Matrix x = data.values().GatherRows(batch);
      Matrix m = data.mask().GatherRows(batch);
      Matrix xm = Mul(x, m);  // masked data rows (missing already 0)

      // --- critic ascent: maximize the embedded Sinkhorn divergence ---
      if (opts_.use_critic) {
        for (int c = 0; c < opts_.critic_steps; ++c) {
          SCIS_TRACE_SPAN("dim.critic_step");
          metrics.critic_steps->Add(1);
          Stopwatch critic_watch;
          Tape& tape = critic_tape_;
          Var neg;
          {
            SCIS_TRACE_SPAN("dim.forward");
            Var xbar = model.ReconstructOnTape(tape, x, m, /*train=*/true);
            Var masked_fake = Mul(xbar, tape.ConstantRef(&m));
            Var emb_fake = critic_->Forward(tape, masked_fake);
            Var emb_real = critic_->Forward(tape, tape.ConstantRef(&xm));
            Var div = SinkhornLossBoth(emb_fake, emb_real, sopts);
            // Gradient ascent on the critic = descent on -div.
            neg = MulScalar(div, -1.0);
          }
          {
            SCIS_TRACE_SPAN("dim.backward");
            tape.Backward(neg);
          }
          {
            SCIS_TRACE_SPAN("dim.optimizer");
            critic_store_.CollectGradsInto(&grad_views_);
            critic_adam_.Step(critic_store_, grad_views_);
            gen_store.DropBindings();  // discard generator grads
          }
          tape.Clear();
          metrics.critic_ms->Observe(critic_watch.ElapsedMillis());
        }
      }

      // --- generator descent on the MS-divergence loss (Eq. 3) ---
      {
        Stopwatch gen_watch;
        Tape& tape = gen_tape_;
        Var loss;
        double div_value;
        {
          SCIS_TRACE_SPAN("dim.forward");
          Var xbar = model.ReconstructOnTape(tape, x, m, /*train=*/true);
          if (opts_.use_critic) {
            Var masked_fake = Mul(xbar, tape.ConstantRef(&m));
            Var emb_fake = critic_->Forward(tape, masked_fake);
            Var emb_real = critic_->Forward(tape, tape.ConstantRef(&xm));
            loss = SinkhornLossBoth(emb_fake, emb_real, sopts);
            div_value = loss.value()(0, 0);
          } else {
            loss = MsLossFast(xbar, x, m, sopts);
            div_value = loss.value()(0, 0);
          }
          if (opts_.recon_weight > 0.0) {
            Var rec = WeightedMseLoss(xbar, tape.ConstantRef(&x),
                                      tape.ConstantRef(&m));
            loss = Add(loss, MulScalar(rec, opts_.recon_weight));
          }
        }
        {
          SCIS_TRACE_SPAN("dim.backward");
          tape.Backward(loss);
        }
        {
          SCIS_TRACE_SPAN("dim.optimizer");
          gen_store.CollectGradsInto(&grad_views_);
          gen_adam_.Step(gen_store, grad_views_);
          if (opts_.use_critic) critic_store_.DropBindings();
        }
        epoch_loss += loss.value()(0, 0);  // node-owned: read before Clear
        tape.Clear();
        epoch_div += div_value;
        ++batches;
        ++stats_.steps;
        metrics.gen_step_ms->Observe(gen_watch.ElapsedMillis());
      }
      metrics.steps->Add(1);
      metrics.batch_ms->Observe(batch_watch.ElapsedMillis());
    }
    metrics.epochs->Add(1);
    if (batches > 0) {
      stats_.final_loss = epoch_loss / static_cast<double>(batches);
      stats_.final_divergence = epoch_div / static_cast<double>(batches);
      metrics.epoch_loss->Set(stats_.final_loss);
      metrics.epoch_divergence->Set(stats_.final_divergence);
    }
  }
  return Status::OK();
}

double DimTrainer::EvalLoss(GenerativeImputer& model, const Matrix& x,
                            const Matrix& m) {
  SinkhornOptions sopts;
  sopts.lambda = opts_.lambda;
  sopts.max_iters = opts_.sinkhorn_iters;
  sopts.tol = 1e-7;
  sopts.rank = opts_.sinkhorn_rank;
  Tape& tape = eval_tape_;
  Var xbar = model.ReconstructOnTape(tape, x, m, /*train=*/false);
  Var loss = MsLoss(xbar, x, m, sopts);
  const double v = loss.value()(0, 0);
  model.generator_params().DropBindings();
  tape.Clear();
  return v;
}

}  // namespace scis
