// SCIS — the end-to-end scalable imputation system (Algorithm 1).
//
//   1. Sample a size-Nv validation set and a size-n0 initial set.
//   2. DIM-train the initial model M0 on the initial set (MS divergence).
//   3. SSE-estimate the minimum sample size n* meeting (ε, α).
//   4. If n* > n0, DIM-retrain (warm-started) on a size-n* sample.
//   5. Impute the full dataset with Eq. 1.
#ifndef SCIS_CORE_SCIS_H_
#define SCIS_CORE_SCIS_H_

#include <memory>

#include "core/dim.h"
#include "core/sse.h"
#include "data/dataset.h"

namespace scis {

struct ScisOptions {
  size_t validation_size = 1000;  // Nv
  size_t initial_size = 500;      // n0 (§VI: dataset-dependent)
  DimOptions dim;
  SseOptions sse;
  uint64_t seed = 41;
};

struct ScisReport {
  size_t n_star = 0;
  double training_sample_rate = 0.0;  // R_t = n*/N (the paper's metric)
  double dim_initial_seconds = 0.0;
  double sse_seconds = 0.0;
  double dim_final_seconds = 0.0;
  double total_seconds = 0.0;
  SseResult sse_result;
};

class Scis {
 public:
  explicit Scis(ScisOptions opts = {});

  // Trains `model` under SCIS on the (normalized, incomplete) dataset and
  // returns the imputed matrix (Eq. 1). The model is trained in place.
  Result<Matrix> Run(GenerativeImputer& model, const Dataset& data);

  const ScisReport& report() const { return report_; }
  const ScisOptions& options() const { return opts_; }

 private:
  ScisOptions opts_;
  ScisReport report_;
};

}  // namespace scis

#endif  // SCIS_CORE_SCIS_H_
