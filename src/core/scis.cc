#include "core/scis.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "data/sampler.h"
#include "obs/trace.h"

namespace scis {

Scis::Scis(ScisOptions opts) : opts_(opts) {}

Result<Matrix> Scis::Run(GenerativeImputer& model, const Dataset& data) {
  SCIS_TRACE_SPAN("scis.run");
  const size_t n = data.num_rows();
  if (n < 4) return Status::InvalidArgument("dataset too small for SCIS");
  const size_t nv = std::min(opts_.validation_size, n / 4);
  const size_t n0 = std::min(opts_.initial_size, n - nv);
  if (nv == 0 || n0 == 0) {
    return Status::InvalidArgument("validation or initial split is empty");
  }
  report_ = ScisReport{};
  Stopwatch total;
  Rng rng(opts_.seed);

  // Line 1: disjoint validation / initial samples.
  ValidationSplit split = SplitValidation(n, nv, rng);
  Dataset validation = data.GatherRows(split.validation);
  std::vector<size_t> initial_idx = SampleFrom(split.rest, n0, rng);
  Dataset initial = data.GatherRows(initial_idx);

  // Line 2: DIM-train M0 on the initial set.
  DimTrainer dim(opts_.dim);
  Stopwatch watch;
  SCIS_RETURN_NOT_OK(dim.Train(model, initial));
  report_.dim_initial_seconds = watch.ElapsedSeconds();

  // Line 3: SSE minimum size.
  SseOptions sse_opts = opts_.sse;
  sse_opts.lambda = opts_.dim.lambda;  // the divergence that trained M0
  SseEstimator sse(sse_opts);
  watch.Restart();
  SCIS_RETURN_NOT_OK(sse.Prepare(model, initial));
  SCIS_ASSIGN_OR_RETURN(SseResult sres,
                        sse.EstimateMinimumSize(model, n, validation, n0));
  report_.sse_seconds = watch.ElapsedSeconds();
  report_.sse_result = sres;
  report_.n_star = sres.n_star;
  report_.training_sample_rate =
      static_cast<double>(sres.n_star) / static_cast<double>(n);

  // Lines 4-5: retrain (warm-started) on the size-n* sample when n* > n0.
  if (sres.n_star > n0) {
    std::vector<size_t> star_idx =
        sres.n_star >= split.rest.size()
            ? split.rest
            : SampleFrom(split.rest, sres.n_star, rng);
    Dataset star = data.GatherRows(star_idx);
    watch.Restart();
    SCIS_RETURN_NOT_OK(dim.Train(model, star));
    report_.dim_final_seconds = watch.ElapsedSeconds();
  }

  // Lines 6-7: impute the whole dataset with the optimized model.
  SCIS_TRACE_SPAN("scis.impute");
  Matrix imputed = model.Impute(data);
  report_.total_seconds = total.ElapsedSeconds();
  return imputed;
}

}  // namespace scis
