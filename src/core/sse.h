// SSE — sample size estimation (§V).
//
// Given the initial model M0 trained on n0 samples, SSE estimates the
// minimum sample size n* such that a model trained on n* samples differs
// from the full-data model by at most ε (Eq. 4) with confidence 1 − α:
//
//  1. Curvature probe (Theorem 1): the parameter distribution of a size-n
//     model is θ_n | θ0 ~ N(θ0, η(n)·H⁻¹), with
//     η(n) ≍ ζ(λ)·(1/n0 − 1/n), ζ(λ) = e^{6/λ}(1 + 1/λ^{⌊d/2⌋})².
//     The paper approximates H by the masked-output Gauss–Newton matrix
//     (1/n0)·Σ P*_ij [T(m_i)∇_θ x̄_i]ᵀ[T(m_i)∇_θ x̄_i]; we estimate its
//     *diagonal* with a Hutchinson probe — E_v[(Jᵀ(v ⊙ m))²] over random
//     ±1 vectors v equals the row sums of J², i.e. diag(Jᵀ J) — averaged
//     per probed row (full Gauss–Newton is quadratic in the parameter
//     count; DESIGN.md documents the substitution). The hidden constant in
//     ≍ is exposed as `eta_scale`.
//  2. Probability estimate (Prop. 2): k parameter pairs
//     (θ_n,i ~ N(θ0, η(n0,n)H⁻¹), θ_N,i ~ N(θ_n,i, η(n,N)H⁻¹)) are drawn
//     with common random numbers across candidate sizes; the empirical
//     fraction of pairs with D(θ_n,i, θ_N,i) ≤ ε must reach
//     (1−α)/(1−β) + sqrt(−log β / (2k)), clamped to 1 (the printed formula
//     exceeds 1 for the paper's k=20, β=0.01 — see EXPERIMENTS.md).
//     D is the Eq.-4 masked RMS output difference over the validation set.
//  3. Binary search for the smallest satisfying n in [n0, N].
#ifndef SCIS_CORE_SSE_H_
#define SCIS_CORE_SSE_H_

#include <vector>

#include "common/status.h"
#include "core/dim.h"
#include "models/imputer.h"

namespace scis {

struct SseOptions {
  double epsilon = 0.001;  // user-tolerated error bound ε
  double alpha = 0.05;     // confidence level (§VI default)
  double beta = 0.01;      // Hoeffding hyper-parameter (§VI default)
  int k = 20;              // parameter samples (§VI default)
  double lambda = 130.0;   // MS-divergence λ, enters ζ(λ)
  // Calibration of the hidden constant in Theorem 1's ≍ (the paper never
  // instantiates it); scales η multiplicatively. The default is calibrated
  // so that the paper's ε ∈ [0.001, 0.009] sweep lands n* in the reported
  // R_t regime on Table-II-shaped data (see EXPERIMENTS.md).
  double eta_scale = 1e-5;
  // Gauss–Newton probe: number of Hutchinson mini-batches and their size.
  int curvature_batches = 8;
  size_t curvature_batch_size = 128;
  // Estimate the *full* P×P Gauss–Newton matrix instead of its diagonal
  // (the same Hutchinson probes give E[g gᵀ] = JᵀJ) and sample parameters
  // with the full covariance η·H⁻¹ via Cholesky. Quadratic in the
  // parameter count — refused above full_gn_max_params. Used to validate
  // the diagonal default on small generators (DESIGN.md §5).
  bool full_gauss_newton = false;
  size_t full_gn_max_params = 4096;
  int sinkhorn_iters = 100;
  uint64_t seed = 37;
};

struct SseResult {
  size_t n_star = 0;
  double probability_at_n_star = 0.0;  // empirical P(D ≤ ε) at n*
  double threshold = 0.0;              // Prop.-2 acceptance threshold
  double zeta = 0.0;                   // ζ(λ) used
  int search_steps = 0;                // binary-search probability evals
  double sse_seconds = 0.0;            // wall clock spent inside SSE
};

// Validates an SseOptions bundle: epsilon > 0; 0 < beta ≤ alpha < 1;
// k ≥ 1; lambda, eta_scale > 0; a positive curvature budget. Returns
// InvalidArgument naming the offending field (instead of aborting inside
// SseThreshold or silently misbehaving) — checked by Prepare() and
// EstimateMinimumSize(), matching the PR-8 Result<> convention.
Status ValidateSseOptions(const SseOptions& opts);

// ζ(λ) = e^{6/λ}(1 + 1/λ^{⌊d/2⌋})² for data normalized to [0,1]^d.
double SseZeta(double lambda, size_t d);
// Prop.-2 acceptance threshold, clamped to [0, 1].
double SseThreshold(double alpha, double beta, int k);

class SseEstimator {
 public:
  explicit SseEstimator(SseOptions opts = {});

  // model: the DIM-trained initial model M0 (its parameters are restored
  // on return). data_size: N. validation: the held-aside validation split
  // (Algorithm 1 line 1). n0: size of the initial training set.
  Result<SseResult> EstimateMinimumSize(GenerativeImputer& model,
                                        size_t data_size,
                                        const Dataset& validation, size_t n0);

  // Empirical P(D(θ_n, θ_N) ≤ ε) for one candidate n (exposed for the
  // Figure-3 sweep and tests). Uses the estimator's cached curvature and
  // common random numbers, so EstimateMinimumSize/Prepare must run first.
  double ProbabilityAt(GenerativeImputer& model, const Dataset& validation,
                       size_t n0, size_t n, size_t data_size);

  // Runs the curvature probe against `curvature_data` (usually the initial
  // training set) and caches θ0, H diag, and the CRN draws.
  Status Prepare(GenerativeImputer& model, const Dataset& curvature_data);

  const std::vector<double>& h_diag() const { return h_diag_; }
  // Lower Cholesky factor L of the ridged full Gauss–Newton matrix, H=LLᵀ
  // (empty in diagonal mode). Exposed so tests can check the probe against
  // a dense reference.
  const Matrix& h_chol() const { return h_chol_; }

 private:
  // Masked RMS output difference (Eq. 4) between two parameter vectors.
  double OutputDistance(GenerativeImputer& model, const Dataset& validation,
                        const std::vector<double>& theta_a,
                        const std::vector<double>& theta_b);

  SseOptions opts_;
  Rng rng_;
  bool prepared_ = false;
  std::vector<double> theta0_;
  std::vector<double> h_diag_;
  // Full-GN mode: lower Cholesky factor of H (sampling back-substitutes
  // x = L⁻ᵀ z so that Cov(x) = H⁻¹). Empty in diagonal mode.
  Matrix h_chol_;
  // Common random numbers: k pairs of standard-normal parameter draws.
  std::vector<std::vector<double>> z1_, z2_;
};

}  // namespace scis

#endif  // SCIS_CORE_SSE_H_
