#include "core/sse.h"

#include <cmath>

#include "common/stopwatch.h"
#include "data/sampler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ot/ms_loss.h"
#include "tensor/linalg.h"

namespace scis {

namespace {

// Cached handles; updates are relaxed atomics (see obs/metrics.h).
struct SseMetrics {
  obs::Counter* probes;       // ProbabilityAt evaluations
  obs::Counter* model_evals;  // k parameter-pair distance evaluations
  obs::Gauge* candidate_n;    // n probed most recently
  obs::Gauge* confidence;     // empirical P(D <= eps) at that n
  obs::Gauge* n_star;         // final binary-search answer

  static const SseMetrics& Get() {
    static const SseMetrics m = [] {
      obs::Registry& r = obs::Registry::Global();
      return SseMetrics{
          r.GetCounter("sse.probes"), r.GetCounter("sse.model_evals"),
          r.GetGauge("sse.candidate_n"), r.GetGauge("sse.confidence"),
          r.GetGauge("sse.n_star"),
      };
    }();
    return m;
  }
};

}  // namespace

Status ValidateSseOptions(const SseOptions& opts) {
  if (!(opts.epsilon > 0.0)) {
    return Status::InvalidArgument("SseOptions.epsilon must be > 0");
  }
  if (!(opts.alpha > 0.0 && opts.alpha < 1.0)) {
    return Status::InvalidArgument("SseOptions.alpha must be in (0, 1)");
  }
  if (!(opts.beta > 0.0 && opts.beta < 1.0)) {
    return Status::InvalidArgument("SseOptions.beta must be in (0, 1)");
  }
  if (opts.beta > opts.alpha) {
    return Status::InvalidArgument(
        "SseOptions.beta must not exceed alpha (Prop. 2 threshold)");
  }
  if (opts.k < 1) {
    return Status::InvalidArgument("SseOptions.k must be >= 1");
  }
  if (!(opts.lambda > 0.0)) {
    return Status::InvalidArgument("SseOptions.lambda must be > 0");
  }
  if (!(opts.eta_scale > 0.0)) {
    return Status::InvalidArgument("SseOptions.eta_scale must be > 0");
  }
  if (opts.curvature_batches < 1) {
    return Status::InvalidArgument(
        "SseOptions.curvature_batches must be >= 1");
  }
  if (opts.curvature_batch_size < 2) {
    return Status::InvalidArgument(
        "SseOptions.curvature_batch_size must be >= 2 rows");
  }
  return Status::OK();
}

double SseZeta(double lambda, size_t d) {
  SCIS_CHECK_GT(lambda, 0.0);
  const double half_d = static_cast<double>(d / 2);
  return std::exp(6.0 / lambda) *
         std::pow(1.0 + 1.0 / std::pow(lambda, half_d), 2.0);
}

double SseThreshold(double alpha, double beta, int k) {
  SCIS_CHECK(beta > 0.0 && beta <= alpha && alpha <= 1.0);
  SCIS_CHECK_GT(k, 0);
  const double t = (1.0 - alpha) / (1.0 - beta) +
                   std::sqrt(-std::log(beta) / (2.0 * k));
  // The §VI constants (k=20, β=0.01) push the printed bound above 1; clamp
  // to "all k samples must pass" (see EXPERIMENTS.md).
  return std::min(t, 1.0);
}

SseEstimator::SseEstimator(SseOptions opts) : opts_(opts), rng_(opts.seed) {}

Status SseEstimator::Prepare(GenerativeImputer& model,
                             const Dataset& curvature_data) {
  SCIS_TRACE_SPAN("sse.prepare");
  if (Status st = ValidateSseOptions(opts_); !st.ok()) return st;
  ParamStore& store = model.generator_params();
  theta0_ = store.ToFlat();
  const size_t p = theta0_.size();
  if (p == 0) return Status::InvalidArgument("model has no parameters");

  // Hutchinson estimate of diag(Jᵀ J) for the masked reconstruction
  // Jacobian J at θ0 (the paper's Gauss–Newton H, diagonal): for random
  // ±1 cell vectors v, E[(Jᵀ(v ⊙ m))_j²] = Σ_cells m·J².  Normalized per
  // probed row so H matches Theorem 1's per-sample convention.
  h_diag_.assign(p, 0.0);
  const bool full_gn = opts_.full_gauss_newton;
  if (full_gn && p > opts_.full_gn_max_params) {
    return Status::InvalidArgument(
        "full Gauss-Newton requested for " + std::to_string(p) +
        " parameters (cap " + std::to_string(opts_.full_gn_max_params) +
        "); use the diagonal mode");
  }
  Matrix h_full;
  if (full_gn) h_full = Matrix(p, p);
  const size_t n = curvature_data.num_rows();
  const size_t bs = std::min(opts_.curvature_batch_size, n);
  if (bs < 2) return Status::InvalidArgument("curvature data too small");
  size_t probed_rows = 0;
  for (int b = 0; b < opts_.curvature_batches; ++b) {
    std::vector<size_t> idx = rng_.SampleWithoutReplacement(n, bs);
    Matrix x = curvature_data.values().GatherRows(idx);
    Matrix m = curvature_data.mask().GatherRows(idx);
    // Rademacher probe restricted to observed cells (the T(m_i) factor).
    Matrix v(bs, x.cols());
    for (size_t k = 0; k < v.size(); ++k) {
      v.data()[k] = m.data()[k] * (rng_.Bernoulli(0.5) ? 1.0 : -1.0);
    }
    Tape tape;
    Var xbar = model.ReconstructOnTape(tape, x, m, /*train=*/false);
    Var probe = Sum(Mul(xbar, tape.Constant(std::move(v))));
    tape.Backward(probe);
    std::vector<Matrix> grads = store.CollectGrads();
    // Flatten the probe gradient g = Jᵀ(v ⊙ m).
    std::vector<double> flat;
    flat.reserve(p);
    for (const Matrix& g : grads) {
      flat.insert(flat.end(), g.data(), g.data() + g.size());
    }
    for (size_t i = 0; i < p; ++i) h_diag_[i] += flat[i] * flat[i];
    if (full_gn) {
      // E[g gᵀ] = Jᵀ J (Rademacher probes): accumulate the outer product.
      for (size_t i = 0; i < p; ++i) {
        if (flat[i] == 0.0) continue;
        double* row = h_full.row_data(i);
        for (size_t j = 0; j < p; ++j) row[j] += flat[i] * flat[j];
      }
    }
    probed_rows += bs;
  }
  double mean_h = 0.0;
  for (double& h : h_diag_) {
    h /= static_cast<double>(probed_rows);
    mean_h += h;
  }
  mean_h /= static_cast<double>(p);
  // Ridge floor so dead parameters do not explode the sampled variance.
  const double floor = std::max(mean_h * 1e-3, 1e-12);
  for (double& h : h_diag_) h = std::max(h, floor);

  h_chol_ = Matrix();
  if (full_gn) {
    MulScalarInPlace(h_full, 1.0 / static_cast<double>(probed_rows));
    for (size_t i = 0; i < p; ++i) h_full(i, i) += floor;  // ridge
    Result<Matrix> chol = Cholesky(h_full);
    if (!chol.ok()) {
      return Status::Internal("full Gauss-Newton not positive definite: " +
                              chol.status().message());
    }
    h_chol_ = std::move(chol).value();
  }

  // Common random numbers for the k parameter pairs.
  z1_.assign(opts_.k, std::vector<double>(p));
  z2_.assign(opts_.k, std::vector<double>(p));
  for (int i = 0; i < opts_.k; ++i) {
    for (size_t j = 0; j < p; ++j) {
      z1_[i][j] = rng_.Normal();
      z2_[i][j] = rng_.Normal();
    }
  }
  prepared_ = true;
  return Status::OK();
}

double SseEstimator::OutputDistance(GenerativeImputer& model,
                                    const Dataset& validation,
                                    const std::vector<double>& theta_a,
                                    const std::vector<double>& theta_b) {
  ParamStore& store = model.generator_params();
  store.FromFlat(theta_a);
  Tape ta;
  Matrix xa = model
                  .ReconstructOnTape(ta, validation.values(),
                                     validation.mask(), /*train=*/false)
                  .value();
  store.CollectGrads();
  store.FromFlat(theta_b);
  Tape tb;
  Matrix xb = model
                  .ReconstructOnTape(tb, validation.values(),
                                     validation.mask(), /*train=*/false)
                  .value();
  store.CollectGrads();
  // Eq. 4: RMS of m ⊙ (x̄_a − x̄_b) over observed cells.
  double acc = 0.0;
  size_t cnt = 0;
  const Matrix& mask = validation.mask();
  for (size_t i = 0; i < xa.rows(); ++i) {
    for (size_t j = 0; j < xa.cols(); ++j) {
      if (mask(i, j) == 1.0) {
        const double diff = xa(i, j) - xb(i, j);
        acc += diff * diff;
        ++cnt;
      }
    }
  }
  return cnt ? std::sqrt(acc / static_cast<double>(cnt)) : 0.0;
}

double SseEstimator::ProbabilityAt(GenerativeImputer& model,
                                   const Dataset& validation, size_t n0,
                                   size_t n, size_t data_size) {
  SCIS_TRACE_SPAN("sse.probe");
  const SseMetrics& metrics = SseMetrics::Get();
  SCIS_CHECK_MSG(prepared_, "Prepare() must run before ProbabilityAt()");
  SCIS_CHECK(n0 <= n && n <= data_size);
  const size_t p = theta0_.size();
  const double zeta = SseZeta(opts_.lambda, validation.num_cols());
  const double eta_0n =
      opts_.eta_scale * zeta *
      std::max(0.0, 1.0 / static_cast<double>(n0) - 1.0 / static_cast<double>(n));
  const double eta_nN =
      opts_.eta_scale * zeta *
      std::max(0.0, 1.0 / static_cast<double>(n) -
                        1.0 / static_cast<double>(data_size));

  // Unit-η parameter directions: diagonal mode scales each coordinate by
  // 1/√h; full mode solves Lᵀ x = z so Cov(x) = H⁻¹.
  auto direction = [&](const std::vector<double>& z) {
    std::vector<double> x(p);
    if (h_chol_.empty()) {
      for (size_t j = 0; j < p; ++j) x[j] = z[j] / std::sqrt(h_diag_[j]);
    } else {
      for (size_t j = p; j-- > 0;) {
        double v = z[j];
        for (size_t k2 = j + 1; k2 < p; ++k2) v -= h_chol_(k2, j) * x[k2];
        x[j] = v / h_chol_(j, j);
      }
    }
    return x;
  };

  std::vector<double> theta_n(p), theta_N(p);
  int pass = 0;
  for (int i = 0; i < opts_.k; ++i) {
    const std::vector<double> d1 = direction(z1_[i]);
    const std::vector<double> d2 = direction(z2_[i]);
    for (size_t j = 0; j < p; ++j) {
      theta_n[j] = theta0_[j] + std::sqrt(eta_0n) * d1[j];
      theta_N[j] = theta_n[j] + std::sqrt(eta_nN) * d2[j];
    }
    const double dist = OutputDistance(model, validation, theta_n, theta_N);
    if (dist <= opts_.epsilon) ++pass;
  }
  // Restore θ0.
  model.generator_params().FromFlat(theta0_);
  const double prob = static_cast<double>(pass) / static_cast<double>(opts_.k);
  metrics.probes->Add(1);
  metrics.model_evals->Add(static_cast<uint64_t>(opts_.k));
  metrics.candidate_n->Set(static_cast<double>(n));
  metrics.confidence->Set(prob);
  return prob;
}

Result<SseResult> SseEstimator::EstimateMinimumSize(GenerativeImputer& model,
                                                    size_t data_size,
                                                    const Dataset& validation,
                                                    size_t n0) {
  if (Status st = ValidateSseOptions(opts_); !st.ok()) return st;
  if (n0 == 0 || n0 > data_size) {
    return Status::InvalidArgument("need 0 < n0 <= N");
  }
  if (!prepared_) {
    return Status::Internal("Prepare() must be called before estimation");
  }
  SCIS_TRACE_SPAN("sse.search");
  Stopwatch watch;
  SseResult res;
  res.zeta = SseZeta(opts_.lambda, validation.num_cols());
  res.threshold = SseThreshold(opts_.alpha, opts_.beta, opts_.k);

  // P(n) is monotone in n under common random numbers: binary search the
  // smallest satisfying size.
  auto satisfied = [&](size_t n) {
    ++res.search_steps;
    return ProbabilityAt(model, validation, n0, n, data_size) >=
           res.threshold;
  };
  size_t lo = n0, hi = data_size;
  if (satisfied(lo)) {
    res.n_star = lo;
  } else {
    // Invariant: P(hi) is satisfied (at n=N the pair distance is 0 ≤ ε).
    while (hi - lo > std::max<size_t>(1, data_size / 1024)) {
      const size_t mid = lo + (hi - lo) / 2;
      if (satisfied(mid)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    res.n_star = hi;
  }
  res.probability_at_n_star =
      ProbabilityAt(model, validation, n0, res.n_star, data_size);
  res.sse_seconds = watch.ElapsedSeconds();
  SseMetrics::Get().n_star->Set(static_cast<double>(res.n_star));
  return res;
}

}  // namespace scis
