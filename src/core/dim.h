// DIM — differentiable imputation modeling (§IV).
//
// Takes any GenerativeImputer and retrains its generator with the
// MS-divergence imputation loss (Eq. 3) by mini-batch gradient descent,
// instead of the model's native JS-divergence adversarial loss. Two critic
// modes (§IV-B):
//   * identity critic (use_critic = false): the generator directly descends
//     L_s = S_m(X̄ ⊙ M, X ⊙ M)/(2n) — the pure Eq.-3 objective;
//   * learned critic (use_critic = true): a feature map φ embeds masked
//     rows; the discriminator ascends the Sinkhorn divergence of the
//     embedded batches while the generator descends it (OT-GAN style,
//     after [19], [41]).
// A small observed-reconstruction MSE anchor (recon_weight) is kept, as in
// GAIN's generator loss; the ablation benches toggle it.
#ifndef SCIS_CORE_DIM_H_
#define SCIS_CORE_DIM_H_

#include <memory>

#include "models/imputer.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "ot/sinkhorn.h"

namespace scis {

struct DimOptions {
  int epochs = 100;
  size_t batch_size = 128;
  double learning_rate = 1e-3;
  double lambda = 130.0;      // MS-divergence λ (§VI default)
  int sinkhorn_iters = 100;
  // Sinkhorn execution rank (SinkhornOptions::rank): kAutoRank keeps small
  // batches on the exact dense solver and switches to the sub-quadratic
  // low-rank path only above SinkhornOptions::lowrank_min_rows — full-batch
  // scale runs, not the default 128-row minibatches.
  int sinkhorn_rank = SinkhornOptions::kAutoRank;
  // Identity critic (false) is the default: the generator directly descends
  // the Eq.-3 loss, which the probe benchmarks showed trains ~50x faster at
  // equal accuracy. The learned critic (OT-GAN style) remains available for
  // the §IV-B adversarial variant and its ablation.
  bool use_critic = false;
  size_t critic_hidden = 32;  // φ: d -> hidden -> d (tanh-bounded output)
  int critic_steps = 1;       // critic updates per generator step
  double recon_weight = 1.0;  // observed-MSE anchor weight
  uint64_t seed = 31;
};

// Statistics from a DIM training run.
struct DimStats {
  double final_loss = 0.0;       // generator loss, last epoch average
  double final_divergence = 0.0; // MS-divergence term, last epoch average
  long steps = 0;
};

class DimTrainer {
 public:
  explicit DimTrainer(DimOptions opts = {});

  // Trains `model`'s generator on `data` (normalized, incomplete) with the
  // MS-divergence loss. May be called repeatedly (Algorithm 1 lines 2/5) —
  // optimizer state persists across calls for warm-started retraining.
  Status Train(GenerativeImputer& model, const Dataset& data);

  const DimStats& stats() const { return stats_; }
  const DimOptions& options() const { return opts_; }

  // Evaluates the MS-divergence loss of `model` on a batch (no training) —
  // used by SSE's curvature probe and by tests.
  double EvalLoss(GenerativeImputer& model, const Matrix& x,
                  const Matrix& m);

  // Pool statistics of the persistent step tapes (steady-state training must
  // show zero new misses; see tests/train_fastpath_test.cc).
  const TapePool::Stats& gen_pool_stats() const {
    return gen_tape_.pool_stats();
  }
  const TapePool::Stats& critic_pool_stats() const {
    return critic_tape_.pool_stats();
  }

 private:
  void EnsureCritic(size_t d, Rng& rng);

  DimOptions opts_;
  Rng rng_;
  Adam gen_adam_, critic_adam_;
  ParamStore critic_store_;
  std::unique_ptr<Mlp> critic_;
  DimStats stats_;
  // Persistent step tapes: Clear() recycles node storage through the tape
  // pool, so the second and later steps allocate nothing on the tape path.
  Tape gen_tape_, critic_tape_, eval_tape_;
  std::vector<const Matrix*> grad_views_;  // reused per step (no realloc)
};

}  // namespace scis

#endif  // SCIS_CORE_DIM_H_
