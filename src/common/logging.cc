#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace scis {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
// Serializes emission only; formatting happens before the lock is taken.
std::mutex g_emit_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p)
      if (*p == '/') base = p + 1;
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::string line = stream_.str();
    line.push_back('\n');
    std::lock_guard<std::mutex> lock(g_emit_mu);
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

}  // namespace internal
}  // namespace scis
