// Invariant-checking macros. SCIS_CHECK fires in all build types and is used
// for programming errors (bad indices, shape mismatches) that cannot be
// produced by user input; user-input validation goes through Status instead.
#ifndef SCIS_COMMON_CHECK_H_
#define SCIS_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace scis::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "SCIS_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace scis::internal

#define SCIS_CHECK(expr)                                               \
  do {                                                                 \
    if (!(expr))                                                       \
      ::scis::internal::CheckFailed(__FILE__, __LINE__, #expr, "");    \
  } while (false)

#define SCIS_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr))                                                       \
      ::scis::internal::CheckFailed(__FILE__, __LINE__, #expr, (msg)); \
  } while (false)

#define SCIS_CHECK_EQ(a, b) SCIS_CHECK((a) == (b))
#define SCIS_CHECK_NE(a, b) SCIS_CHECK((a) != (b))
#define SCIS_CHECK_LT(a, b) SCIS_CHECK((a) < (b))
#define SCIS_CHECK_LE(a, b) SCIS_CHECK((a) <= (b))
#define SCIS_CHECK_GT(a, b) SCIS_CHECK((a) > (b))
#define SCIS_CHECK_GE(a, b) SCIS_CHECK((a) >= (b))

// Debug-only check for hot loops.
#ifdef NDEBUG
#define SCIS_DCHECK(expr) ((void)0)
#else
#define SCIS_DCHECK(expr) SCIS_CHECK(expr)
#endif

#endif  // SCIS_COMMON_CHECK_H_
