// Status / Result error-handling primitives, in the style of Apache Arrow
// and RocksDB: fallible operations at API boundaries return a Status (or a
// Result<T> carrying a value), never throw across module boundaries.
#ifndef SCIS_COMMON_STATUS_H_
#define SCIS_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace scis {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kNotImplemented,
  kInternal,
  // Serving: admission control (queue full / shutting down) and per-request
  // deadline expiry. Appended so existing numeric values stay stable — the
  // serve wire protocol transmits codes as integers.
  kUnavailable,
  kDeadlineExceeded,
};

// Returns a short human-readable name for `code` ("OK", "Invalid argument"...).
const char* StatusCodeToString(StatusCode code);

// A Status holds either success (kOk) or an error code plus message.
// Cheap to copy in the OK case (no allocation).
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  // "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  Status(StatusCode code, std::string msg)
      : state_(std::make_shared<State>(State{code, std::move(msg)})) {}

  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<State> state_;  // null == OK
};

// Result<T> carries either a T or an error Status. Accessing the value of an
// errored Result aborts (programming error), mirroring arrow::Result.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}       // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) { // NOLINT(runtime/explicit)
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(v_);
  }

  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

// Propagates an error Status from an expression, Arrow-style.
#define SCIS_RETURN_NOT_OK(expr)                    \
  do {                                              \
    ::scis::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                      \
  } while (false)

// Assigns the value of a Result expression or propagates its error.
#define SCIS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define SCIS_ASSIGN_OR_RETURN(lhs, expr) \
  SCIS_ASSIGN_OR_RETURN_IMPL(SCIS_CONCAT_(_res_, __LINE__), lhs, expr)

#define SCIS_CONCAT_INNER_(a, b) a##b
#define SCIS_CONCAT_(a, b) SCIS_CONCAT_INNER_(a, b)

}  // namespace scis

#endif  // SCIS_COMMON_STATUS_H_
