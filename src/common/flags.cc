#include "common/flags.h"

#include <cstdio>

#include "common/string_util.h"

namespace scis {

void FlagParser::AddDouble(const std::string& name, double* target,
                           const std::string& help) {
  flags_[name] = Flag{Kind::kDouble, target, help};
}
void FlagParser::AddInt(const std::string& name, long long* target,
                        const std::string& help) {
  flags_[name] = Flag{Kind::kInt, target, help};
}
void FlagParser::AddString(const std::string& name, std::string* target,
                           const std::string& help) {
  flags_[name] = Flag{Kind::kString, target, help};
}
void FlagParser::AddBool(const std::string& name, bool* target,
                         const std::string& help) {
  flags_[name] = Flag{Kind::kBool, target, help};
}

Status FlagParser::Set(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& f = it->second;
  switch (f.kind) {
    case Kind::kDouble: {
      SCIS_ASSIGN_OR_RETURN(*static_cast<double*>(f.target),
                            ParseDouble(value));
      return Status::OK();
    }
    case Kind::kInt: {
      SCIS_ASSIGN_OR_RETURN(*static_cast<long long*>(f.target),
                            ParseInt(value));
      return Status::OK();
    }
    case Kind::kString:
      *static_cast<std::string*>(f.target) = value;
      return Status::OK();
    case Kind::kBool:
      if (EqualsIgnoreCase(value, "true") || value == "1") {
        *static_cast<bool*>(f.target) = true;
      } else if (EqualsIgnoreCase(value, "false") || value == "0") {
        *static_cast<bool*>(f.target) = false;
      } else {
        return Status::InvalidArgument("bad bool for --" + name + ": " +
                                       value);
      }
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage(argv[0]).c_str(), stdout);
      return Status::OutOfRange("help requested");
    }
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected argument: " + arg);
    }
    arg = arg.substr(2);
    size_t eq = arg.find('=');
    std::string name, value;
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.kind == Kind::kBool) {
        value = "true";  // bare --flag form for booleans
      } else {
        if (i + 1 >= argc)
          return Status::InvalidArgument("missing value for --" + name);
        value = argv[++i];
      }
    }
    SCIS_RETURN_NOT_OK(Set(name, value));
  }
  return Status::OK();
}

std::string FlagParser::Usage(const std::string& program) const {
  std::string out = "Usage: " + program + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name + "  " + flag.help + "\n";
  }
  return out;
}

}  // namespace scis
