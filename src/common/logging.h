// Minimal leveled logger writing to stderr. Not thread-safe beyond the
// atomicity of a single fprintf; the library is single-threaded by design.
#ifndef SCIS_COMMON_LOGGING_H_
#define SCIS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace scis {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global log threshold; messages below it are dropped. Default kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();  // emits the accumulated message

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace scis

#define SCIS_LOG(level)                                        \
  ::scis::internal::LogMessage(::scis::LogLevel::k##level,     \
                               __FILE__, __LINE__)

#endif  // SCIS_COMMON_LOGGING_H_
