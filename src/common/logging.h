// Minimal leveled logger writing to stderr. Thread-safe: each message is
// formatted off-lock into its own buffer, then emitted as a single
// mutex-guarded fwrite, so lines from the runtime's worker threads never
// interleave. The level threshold is an atomic read.
#ifndef SCIS_COMMON_LOGGING_H_
#define SCIS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace scis {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global log threshold; messages below it are dropped. Default kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();  // emits the accumulated message

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace scis

#define SCIS_LOG(level)                                        \
  ::scis::internal::LogMessage(::scis::LogLevel::k##level,     \
                               __FILE__, __LINE__)

#endif  // SCIS_COMMON_LOGGING_H_
