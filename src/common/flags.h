// Tiny command-line flag parser for the bench/example binaries.
// Accepts "--name=value" and "--name value"; unknown flags are an error so
// typos in experiment sweeps fail loudly instead of silently using defaults.
#ifndef SCIS_COMMON_FLAGS_H_
#define SCIS_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace scis {

class FlagParser {
 public:
  // Registration returns a pointer whose pointee is updated by Parse().
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddInt(const std::string& name, long long* target,
              const std::string& help);
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);

  // Parses argv; on "--help" prints usage and returns OutOfRange so callers
  // can exit cleanly.
  Status Parse(int argc, char** argv);

  std::string Usage(const std::string& program) const;

 private:
  enum class Kind { kDouble, kInt, kString, kBool };
  struct Flag {
    Kind kind;
    void* target;
    std::string help;
  };
  Status Set(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
};

}  // namespace scis

#endif  // SCIS_COMMON_FLAGS_H_
