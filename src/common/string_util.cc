#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace scis {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty() || EqualsIgnoreCase(s, "na") || EqualsIgnoreCase(s, "nan") ||
      EqualsIgnoreCase(s, "null")) {
    return Status::NotFound("missing value");
  }
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: '" + buf + "'");
  }
  // strtod accepts "inf"/"infinity" and overflows (1e999) to ±HUGE_VAL;
  // none of those is a representable dataset value.
  if (!std::isfinite(v)) {
    return Status::InvalidArgument("non-finite value: '" + buf + "'");
  }
  return v;
}

Result<long long> ParseInt(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty integer");
  std::string buf(s);
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  return v;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace scis
