// Small string helpers shared by CSV parsing and the CLI flag parser.
#ifndef SCIS_COMMON_STRING_UTIL_H_
#define SCIS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace scis {

// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

// Parses a double; empty / "NA" / "nan" / "null" (case-insensitive) parse as
// missing and return NotFound so callers can distinguish missing from error.
Result<double> ParseDouble(std::string_view s);

// Parses a non-negative integer.
Result<long long> ParseInt(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace scis

#endif  // SCIS_COMMON_STRING_UTIL_H_
