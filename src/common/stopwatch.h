// Wall-clock stopwatch used by the experiment harness to report training
// time, matching the paper's "Time (s)" columns.
#ifndef SCIS_COMMON_STOPWATCH_H_
#define SCIS_COMMON_STOPWATCH_H_

#include <chrono>

namespace scis {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace scis

#endif  // SCIS_COMMON_STOPWATCH_H_
