#include "testkit/golden.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

namespace scis::testkit {

#ifndef SCIS_DEFAULT_GOLDEN_DIR
#define SCIS_DEFAULT_GOLDEN_DIR "tests/golden"
#endif

std::string GoldenDir() {
  const char* env = std::getenv("SCIS_GOLDEN_DIR");
  if (env != nullptr && *env != '\0') return env;
  return SCIS_DEFAULT_GOLDEN_DIR;
}

bool UpdateGoldensRequested() {
  const char* env = std::getenv("SCIS_UPDATE_GOLDENS");
  return env != nullptr && std::string(env) == "1";
}

namespace {

// Pinpoints the first differing line for the failure message.
std::string FirstDiff(const std::string& expected, const std::string& actual) {
  std::istringstream es(expected), as(actual);
  std::string el, al;
  int line = 0;
  while (true) {
    ++line;
    const bool more_e = static_cast<bool>(std::getline(es, el));
    const bool more_a = static_cast<bool>(std::getline(as, al));
    if (!more_e && !more_a) return "contents identical";
    if (el != al || more_e != more_a) {
      std::ostringstream oss;
      oss << "first difference at line " << line << ":\n  golden: "
          << (more_e ? el : "<eof>") << "\n  actual: "
          << (more_a ? al : "<eof>");
      return oss.str();
    }
  }
}

}  // namespace

GoldenMatch MatchGolden(const std::string& name, const std::string& content) {
  const std::string path = GoldenDir() + "/" + name;
  GoldenMatch match;
  if (UpdateGoldensRequested()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    out.flush();
    if (!out) {
      match.message = "failed to write golden " + path;
      return match;
    }
    match.ok = true;
    match.updated = true;
    match.message = "updated " + path;
    return match;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    match.message = "missing golden " + path +
                    " — generate it with SCIS_UPDATE_GOLDENS=1";
    return match;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();
  if (expected == content) {
    match.ok = true;
    return match;
  }
  match.message = "golden mismatch for " + path + "\n" +
                  FirstDiff(expected, content) +
                  "\nregenerate with SCIS_UPDATE_GOLDENS=1 if intended";
  return match;
}

namespace {

// Minimal recursive-descent walk collecting "path:type" pairs.
struct ShapeParser {
  const std::string& s;
  size_t pos = 0;
  std::set<std::string> paths = {};
  bool failed = false;

  void SkipWs() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\n' ||
                              s[pos] == '\t' || s[pos] == '\r')) {
      ++pos;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  std::string ParseString() {
    // pos is one past the opening quote on entry.
    std::string out;
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\' && pos + 1 < s.size()) {
        out += s[pos + 1];
        pos += 2;
      } else {
        out += s[pos++];
      }
    }
    ++pos;  // closing quote
    return out;
  }

  void Value(const std::string& path) {
    SkipWs();
    if (pos >= s.size()) {
      failed = true;
      return;
    }
    const char c = s[pos];
    if (c == '{') {
      ++pos;
      paths.insert(path + ":object");
      SkipWs();
      if (Consume('}')) return;
      while (!failed) {
        SkipWs();
        if (pos >= s.size() || s[pos] != '"') {
          failed = true;
          return;
        }
        ++pos;
        const std::string key = ParseString();
        if (!Consume(':')) {
          failed = true;
          return;
        }
        Value(path.empty() ? key : path + "." + key);
        if (Consume(',')) continue;
        if (Consume('}')) return;
        failed = true;
        return;
      }
    } else if (c == '[') {
      ++pos;
      paths.insert(path + ":array");
      SkipWs();
      if (Consume(']')) return;
      while (!failed) {
        Value(path + "[]");
        if (Consume(',')) continue;
        if (Consume(']')) return;
        failed = true;
        return;
      }
    } else if (c == '"') {
      ++pos;
      ParseString();
      paths.insert(path + ":string");
    } else if (s.compare(pos, 4, "true") == 0 ||
               s.compare(pos, 5, "false") == 0) {
      pos += (c == 't') ? 4 : 5;
      paths.insert(path + ":bool");
    } else if (s.compare(pos, 4, "null") == 0) {
      pos += 4;
      paths.insert(path + ":null");
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      while (pos < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[pos])) ||
              s[pos] == '-' || s[pos] == '+' || s[pos] == '.' ||
              s[pos] == 'e' || s[pos] == 'E' || s[pos] == 'i' ||
              s[pos] == 'n' || s[pos] == 'f' || s[pos] == 'a')) {
        ++pos;  // accepts numbers plus inf/nan tokens some writers emit
      }
      paths.insert(path + ":number");
    } else {
      failed = true;
    }
  }
};

}  // namespace

std::string JsonShape(const std::string& json) {
  ShapeParser parser{json};
  parser.Value("");
  parser.SkipWs();
  if (parser.failed || parser.pos != json.size()) {
    return "<invalid json at byte " + std::to_string(parser.pos) + ">\n";
  }
  std::ostringstream oss;
  for (const std::string& p : parser.paths) oss << p << "\n";
  return oss.str();
}

}  // namespace scis::testkit
