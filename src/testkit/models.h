// A minimal GenerativeImputer for oracle tests: a smooth MLP generator
// (no relu, no noise, no dropout) over the GAIN-style input [x ⊙ m, m].
// Smoothness keeps central-difference oracles reliable, and the parameter
// count stays small enough for the dense Gauss–Newton reference.
#ifndef SCIS_TESTKIT_MODELS_H_
#define SCIS_TESTKIT_MODELS_H_

#include <memory>

#include "models/imputer.h"
#include "nn/optimizer.h"
#include "testkit/generators.h"

namespace scis::testkit {

class TinyMlpModel final : public GenerativeImputer {
 public:
  // `config.dims` must map 2d -> d for column count d. Use DefaultConfig()
  // or GenMlpConfig(rng, 2 * d, d) (activations are already smooth-only).
  TinyMlpModel(MlpConfig config, size_t d);

  // {2d, d+2, d} with tanh hidden and sigmoid output.
  static MlpConfig DefaultConfig(size_t d, uint64_t seed);

  std::string name() const override { return "TinyMlp"; }
  // A few full-batch Adam steps on observed-cell MSE — enough to move θ0
  // off its random initialization so curvature is model-dependent.
  Status Fit(const Dataset& data) override;
  Matrix Reconstruct(const Dataset& data) const override;

  ParamStore& generator_params() override { return store_; }
  const ParamStore& generator_params() const override { return store_; }
  Var ReconstructOnTape(Tape& tape, const Matrix& x, const Matrix& m,
                        bool train) override;
  std::unique_ptr<GenerativeImputer> CloneArchitecture(
      uint64_t seed) const override;

  int fit_steps = 20;
  double learning_rate = 0.01;

 private:
  MlpConfig config_;
  size_t d_;
  ParamStore store_;
  std::unique_ptr<Mlp> mlp_;
};

}  // namespace scis::testkit

#endif  // SCIS_TESTKIT_MODELS_H_
