#include "testkit/shrink.h"

#include <cmath>
#include <vector>

namespace scis::testkit {

namespace {

Matrix DropRows(const Matrix& m, size_t start, size_t count) {
  Matrix out(m.rows() - count, m.cols());
  size_t r = 0;
  for (size_t i = 0; i < m.rows(); ++i) {
    if (i >= start && i < start + count) continue;
    for (size_t j = 0; j < m.cols(); ++j) out(r, j) = m(i, j);
    ++r;
  }
  return out;
}

Matrix DropCols(const Matrix& m, size_t start, size_t count) {
  Matrix out(m.rows(), m.cols() - count);
  for (size_t i = 0; i < m.rows(); ++i) {
    size_t c = 0;
    for (size_t j = 0; j < m.cols(); ++j) {
      if (j >= start && j < start + count) continue;
      out(i, c++) = m(i, j);
    }
  }
  return out;
}

// Tries block removals along one axis, largest blocks first. `apply` builds
// the candidate, `axis_len` reads the current length; returns true if any
// removal was accepted (the caller restarts from the largest block size).
template <typename T>
bool TryDropBlocks(T& current, size_t min_len,
                   const std::function<size_t(const T&)>& axis_len,
                   const std::function<T(const T&, size_t, size_t)>& drop,
                   const std::function<bool(const T&)>& still_fails) {
  const size_t len = axis_len(current);
  if (len <= min_len) return false;
  for (size_t block = (len - min_len + 1) / 2; block >= 1; block /= 2) {
    for (size_t start = 0; start + block <= len; start += block) {
      const size_t count = std::min(block, len - min_len);
      if (count == 0) continue;
      if (start + count > len) continue;
      T candidate = drop(current, start, count);
      if (still_fails(candidate)) {
        current = std::move(candidate);
        return true;
      }
    }
    if (block == 1) break;
  }
  return false;
}

}  // namespace

Matrix ShrinkMatrix(const Matrix& failing,
                    const std::function<bool(const Matrix&)>& still_fails) {
  Matrix current = failing;
  bool progress = true;
  while (progress) {
    progress = false;
    // Structural moves first: fewer rows, then fewer columns.
    while (TryDropBlocks<Matrix>(
        current, 1, [](const Matrix& m) { return m.rows(); },
        [](const Matrix& m, size_t s, size_t c) { return DropRows(m, s, c); },
        still_fails)) {
      progress = true;
    }
    while (TryDropBlocks<Matrix>(
        current, 1, [](const Matrix& m) { return m.cols(); },
        [](const Matrix& m, size_t s, size_t c) { return DropCols(m, s, c); },
        still_fails)) {
      progress = true;
    }
    // Value moves: zero an entry, else round it to the nearest integer.
    for (size_t k = 0; k < current.size(); ++k) {
      const double v = current[k];
      if (v == 0.0) continue;
      Matrix candidate = current;
      candidate[k] = 0.0;
      if (still_fails(candidate)) {
        current = std::move(candidate);
        progress = true;
        continue;
      }
      const double rounded = std::round(v);
      if (rounded != v) {
        candidate = current;
        candidate[k] = rounded;
        if (still_fails(candidate)) {
          current = std::move(candidate);
          progress = true;
        }
      }
    }
  }
  return current;
}

namespace {

Dataset DatasetDropRows(const Dataset& d, size_t start, size_t count) {
  return Dataset(d.name(), DropRows(d.values(), start, count),
                 DropRows(d.mask(), start, count), d.columns());
}

Dataset DatasetDropCols(const Dataset& d, size_t start, size_t count) {
  std::vector<ColumnMeta> cols;
  for (size_t j = 0; j < d.columns().size(); ++j) {
    if (j >= start && j < start + count) continue;
    cols.push_back(d.columns()[j]);
  }
  return Dataset(d.name(), DropCols(d.values(), start, count),
                 DropCols(d.mask(), start, count), std::move(cols));
}

}  // namespace

Dataset ShrinkDataset(const Dataset& failing,
                      const std::function<bool(const Dataset&)>& still_fails) {
  Dataset current = failing;
  bool progress = true;
  while (progress) {
    progress = false;
    while (TryDropBlocks<Dataset>(
        current, 1, [](const Dataset& d) { return d.num_rows(); },
        [](const Dataset& d, size_t s, size_t c) {
          return DatasetDropRows(d, s, c);
        },
        still_fails)) {
      progress = true;
    }
    while (TryDropBlocks<Dataset>(
        current, 1, [](const Dataset& d) { return d.num_cols(); },
        [](const Dataset& d, size_t s, size_t c) {
          return DatasetDropCols(d, s, c);
        },
        still_fails)) {
      progress = true;
    }
    // Zero observed values (missing cells are already zero by convention).
    for (size_t i = 0; i < current.num_rows(); ++i) {
      for (size_t j = 0; j < current.num_cols(); ++j) {
        if (current.values()(i, j) == 0.0) continue;
        Dataset candidate = current;
        candidate.mutable_values()(i, j) = 0.0;
        if (still_fails(candidate)) {
          current = std::move(candidate);
          progress = true;
        }
      }
    }
  }
  return current;
}

}  // namespace scis::testkit
