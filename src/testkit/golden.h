// Golden-file regression helpers. A golden is a checked-in text artifact
// (tests/golden/<name>) compared byte-for-byte against freshly computed
// content; SCIS_UPDATE_GOLDENS=1 rewrites the files instead of comparing.
// Content must be deterministic — fixed seeds, values printed at
// max_digits10, no wall-clock — so regeneration is bit-exact on rerun.
//
// Also provides JsonShape(), which reduces a JSON document to its sorted
// key-path/type skeleton ("config.epochs:number") so structural regressions
// in run reports are caught without pinning volatile values.
#ifndef SCIS_TESTKIT_GOLDEN_H_
#define SCIS_TESTKIT_GOLDEN_H_

#include <string>

namespace scis::testkit {

struct GoldenMatch {
  bool ok = false;
  bool updated = false;  // true when SCIS_UPDATE_GOLDENS=1 rewrote the file
  std::string message;   // first difference, or the write error
};

// Directory holding golden files: $SCIS_GOLDEN_DIR if set, else the
// compiled-in tests/golden path.
std::string GoldenDir();

bool UpdateGoldensRequested();  // SCIS_UPDATE_GOLDENS=1

// Compares `content` against golden `name` (a filename under GoldenDir()).
// In update mode, writes the file (creating directories is the caller's
// job — tests/golden is checked in) and reports ok.
GoldenMatch MatchGolden(const std::string& name, const std::string& content);

// Sorted, deduplicated "path:type" lines for a JSON document; array
// elements collapse to "[]". Returns an "<invalid json: ...>" line on
// malformed input. Handles the subset emitted by obs::RunReport / the
// metrics registry (objects, arrays, strings, numbers, bools, null).
std::string JsonShape(const std::string& json);

}  // namespace scis::testkit

#endif  // SCIS_TESTKIT_GOLDEN_H_
