// gtest bindings for the testkit property runner and golden matcher. Only
// test files include this header; the compiled scis_testkit library stays
// gtest-free so tools and benches can link it too.
#ifndef SCIS_TESTKIT_GTEST_GLUE_H_
#define SCIS_TESTKIT_GTEST_GLUE_H_

#include <gtest/gtest.h>

#include "testkit/golden.h"
#include "testkit/property.h"

// Runs a seed-indexed property: CHECK_PROPERTY("name", [&](uint64_t seed)
// -> PropertyStatus { ... }); optional trailing PropertyOptions.
#define CHECK_PROPERTY(name, ...)                                      \
  do {                                                                 \
    const ::scis::testkit::PropertyRunResult testkit_result_ =         \
        ::scis::testkit::RunPropertyImpl(name, __VA_ARGS__);           \
    EXPECT_TRUE(testkit_result_.passed) << testkit_result_.report;     \
  } while (0)

// Property over a generated Matrix, with shrinking on failure:
// CHECK_MATRIX_PROPERTY("name", gen(Rng&)->Matrix,
//                       pred(const Matrix&)->PropertyStatus).
#define CHECK_MATRIX_PROPERTY(name, ...)                               \
  do {                                                                 \
    const ::scis::testkit::PropertyRunResult testkit_result_ =         \
        ::scis::testkit::RunMatrixPropertyImpl(name, __VA_ARGS__);     \
    EXPECT_TRUE(testkit_result_.passed) << testkit_result_.report;     \
  } while (0)

#define CHECK_DATASET_PROPERTY(name, ...)                              \
  do {                                                                 \
    const ::scis::testkit::PropertyRunResult testkit_result_ =         \
        ::scis::testkit::RunDatasetPropertyImpl(name, __VA_ARGS__);    \
    EXPECT_TRUE(testkit_result_.passed) << testkit_result_.report;     \
  } while (0)

// Golden comparison as a gtest assertion.
#define EXPECT_MATCHES_GOLDEN(name, content)                           \
  do {                                                                 \
    const ::scis::testkit::GoldenMatch testkit_match_ =                \
        ::scis::testkit::MatchGolden(name, content);                   \
    EXPECT_TRUE(testkit_match_.ok) << testkit_match_.message;          \
  } while (0)

#endif  // SCIS_TESTKIT_GTEST_GLUE_H_
