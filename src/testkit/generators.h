// Deterministic random-input generators for property tests: matrices,
// missingness masks (MCAR/MAR/MNAR, via the production injectors), datasets
// with edge shapes (single column, fully-missing rows, all-observed), and
// MLP configurations. Everything is a pure function of the Rng passed in, so
// a failing seed reproduces the exact input.
#ifndef SCIS_TESTKIT_GENERATORS_H_
#define SCIS_TESTKIT_GENERATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/layers.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace scis::testkit {

struct MatrixGen {
  size_t min_rows = 1, max_rows = 8;
  size_t min_cols = 1, max_cols = 6;
  double lo = -2.0, hi = 2.0;  // uniform range when !gaussian
  bool gaussian = false;
  double stddev = 1.0;
};

Matrix GenMatrix(Rng& rng, const MatrixGen& g = {});

enum class MaskMechanism { kMcar, kMar, kMnar };

// {0,1} mask over `values` with the given mechanism and target missing
// rate. MAR/MNAR reuse the production injectors (data/missingness) so the
// generated patterns match what the pipeline actually produces; MAR falls
// back to MCAR below two columns (it needs a pivot column).
Matrix GenMask(Rng& rng, const Matrix& values, MaskMechanism mechanism,
               double missing_rate);

struct DatasetGen {
  size_t min_rows = 2, max_rows = 24;
  size_t min_cols = 1, max_cols = 8;
  double lo = 0.0, hi = 1.0;  // value range (library convention: [0,1]^d)
  double min_missing = 0.0, max_missing = 0.6;
  MaskMechanism mechanism = MaskMechanism::kMcar;
  // Probability of forcing an edge shape: a single-column dataset, a row
  // with every cell missing, or an all-observed dataset.
  double edge_case_prob = 0.25;
};

// Random incomplete dataset (numeric columns, Validate()-clean).
Dataset GenDataset(Rng& rng, const DatasetGen& g = {});

struct MlpConfig {
  std::vector<size_t> dims;  // {in, hidden..., out}
  Activation hidden_act = Activation::kTanh;
  Activation out_act = Activation::kNone;
  uint64_t init_seed = 1;

  std::string ToString() const;
};

// 0–2 hidden layers of width 2–8, random smooth activations.
MlpConfig GenMlpConfig(Rng& rng, size_t in_dim, size_t out_dim);

// Materializes the config: registers parameters in `store`.
std::unique_ptr<Mlp> BuildMlp(ParamStore* store, const std::string& name,
                              const MlpConfig& config);

}  // namespace scis::testkit

#endif  // SCIS_TESTKIT_GENERATORS_H_
