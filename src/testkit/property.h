// Seeded property-test runner: the correctness harness behind every
// randomized suite in tests/.
//
// A property is a predicate evaluated under many derived seeds. On failure
// the runner reports the exact seed that reproduces the failure (replay it
// with SCIS_TESTKIT_SEED=<seed>), and the typed runners additionally shrink
// the failing Matrix/Dataset input to a (greedily) minimal counterexample
// before reporting. The core runner is gtest-free so oracles and tools can
// reuse it; test files include testkit/gtest_glue.h for the CHECK_PROPERTY
// macros that turn a PropertyRunResult into a test failure.
#ifndef SCIS_TESTKIT_PROPERTY_H_
#define SCIS_TESTKIT_PROPERTY_H_

#include <functional>
#include <optional>
#include <sstream>
#include <string>

#include "data/dataset.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace scis::testkit {

struct PropertyOptions {
  int iterations = 32;        // seeds tried when no replay seed is set
  uint64_t base_seed = 0;     // 0 = derived from the property name
  int max_shrink_evals = 400; // predicate-call budget while shrinking
};

// Outcome of one property evaluation. Use the PROP_CHECK* helpers below to
// build failing statuses with the offending values in the message.
struct PropertyStatus {
  bool ok = true;
  std::string message;

  static PropertyStatus Pass() { return {}; }
  static PropertyStatus Fail(std::string msg) { return {false, std::move(msg)}; }
};

// Outcome of a full multi-seed run (what CHECK_PROPERTY asserts on).
struct PropertyRunResult {
  bool passed = true;
  int iterations_run = 0;
  uint64_t failing_seed = 0;     // valid when !passed
  std::string failure_message;   // the property's own message
  std::string shrunk_input;      // minimal failing input (typed runners only)
  std::string report;            // human-readable report with the replay line
};

// Seed for iteration `i` of property `name`: a splitmix64 stream keyed by
// FNV-1a(name) ^ base_seed, so suites do not share sequences and inserting
// a property never reshuffles another property's seeds.
uint64_t DeriveSeed(const std::string& name, uint64_t base_seed, int iteration);

// Parses SCIS_TESTKIT_SEED (decimal u64). nullopt when unset/empty.
std::optional<uint64_t> ReplaySeedFromEnv();

// Runs `property` over the derived seed stream (or only the replay seed when
// SCIS_TESTKIT_SEED is set) and reports the first failure.
PropertyRunResult RunPropertyImpl(
    const std::string& name,
    const std::function<PropertyStatus(uint64_t)>& property,
    const PropertyOptions& opts = {});

// Typed runners: the input is generated from the seed via `gen`, checked via
// `property`, and on failure greedily shrunk (row/col removal, value
// simplification) while the property keeps failing.
PropertyRunResult RunMatrixPropertyImpl(
    const std::string& name, const std::function<Matrix(Rng&)>& gen,
    const std::function<PropertyStatus(const Matrix&)>& property,
    const PropertyOptions& opts = {});

PropertyRunResult RunDatasetPropertyImpl(
    const std::string& name, const std::function<Dataset(Rng&)>& gen,
    const std::function<PropertyStatus(const Dataset&)>& property,
    const PropertyOptions& opts = {});

}  // namespace scis::testkit

// In-property assertion helpers: return a failing PropertyStatus carrying
// the expression and the offending values.
#define PROP_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      return ::scis::testkit::PropertyStatus::Fail(                   \
          std::string("PROP_CHECK failed: ") + #cond);                \
    }                                                                 \
  } while (0)

#define PROP_CHECK_MSG(cond, msg)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream prop_oss_;                                   \
      prop_oss_ << "PROP_CHECK failed: " << #cond << " — " << msg;    \
      return ::scis::testkit::PropertyStatus::Fail(prop_oss_.str());  \
    }                                                                 \
  } while (0)

#define PROP_CHECK_NEAR(a, b, tol)                                        \
  do {                                                                    \
    const double prop_a_ = (a), prop_b_ = (b), prop_tol_ = (tol);         \
    if (!(std::abs(prop_a_ - prop_b_) <= prop_tol_)) {                    \
      std::ostringstream prop_oss_;                                       \
      prop_oss_.precision(17);                                            \
      prop_oss_ << "PROP_CHECK_NEAR failed: |" << #a << " - " << #b       \
                << "| = " << std::abs(prop_a_ - prop_b_) << " > " << #tol \
                << " (" << prop_a_ << " vs " << prop_b_ << ")";           \
      return ::scis::testkit::PropertyStatus::Fail(prop_oss_.str());      \
    }                                                                     \
  } while (0)

#define PROP_CHECK_LE(a, b)                                          \
  do {                                                               \
    const double prop_a_ = (a), prop_b_ = (b);                       \
    if (!(prop_a_ <= prop_b_)) {                                     \
      std::ostringstream prop_oss_;                                  \
      prop_oss_.precision(17);                                       \
      prop_oss_ << "PROP_CHECK_LE failed: " << #a << " = " << prop_a_ \
                << " > " << #b << " = " << prop_b_;                  \
      return ::scis::testkit::PropertyStatus::Fail(prop_oss_.str()); \
    }                                                                \
  } while (0)

#endif  // SCIS_TESTKIT_PROPERTY_H_
