// Greedy input shrinking for failing property tests: repeatedly applies
// simplification moves (drop row/column blocks, then round values toward
// zero) and keeps any move after which the failure predicate still fails,
// until a fixpoint. Not globally minimal — greedy, like QuickCheck/RapidCheck
// shrinkers — but typically turns a 20x8 random counterexample into a 1x1 or
// 2x2 one a human can read.
#ifndef SCIS_TESTKIT_SHRINK_H_
#define SCIS_TESTKIT_SHRINK_H_

#include <functional>

#include "data/dataset.h"
#include "tensor/matrix.h"

namespace scis::testkit {

// `still_fails` must return true while the input still reproduces the
// failure; it may also return false to stop early (e.g. an eval budget).
Matrix ShrinkMatrix(const Matrix& failing,
                    const std::function<bool(const Matrix&)>& still_fails);

// Dataset moves: drop row blocks, drop column blocks (with their metadata),
// zero observed values. The result always satisfies Dataset::Validate().
Dataset ShrinkDataset(const Dataset& failing,
                      const std::function<bool(const Dataset&)>& still_fails);

}  // namespace scis::testkit

#endif  // SCIS_TESTKIT_SHRINK_H_
