#include "testkit/models.h"

#include "tensor/matrix_ops.h"

namespace scis::testkit {

TinyMlpModel::TinyMlpModel(MlpConfig config, size_t d)
    : config_(std::move(config)), d_(d) {
  SCIS_CHECK_EQ(config_.dims.front(), 2 * d);
  SCIS_CHECK_EQ(config_.dims.back(), d);
  mlp_ = BuildMlp(&store_, "tiny.G", config_);
}

MlpConfig TinyMlpModel::DefaultConfig(size_t d, uint64_t seed) {
  MlpConfig config;
  config.dims = {2 * d, d + 2, d};
  config.hidden_act = Activation::kTanh;
  config.out_act = Activation::kSigmoid;
  config.init_seed = seed;
  return config;
}

Status TinyMlpModel::Fit(const Dataset& data) {
  if (data.num_rows() == 0) return Status::InvalidArgument("empty dataset");
  Adam adam(learning_rate);
  for (int step = 0; step < fit_steps; ++step) {
    Tape tape;
    Var xbar =
        ReconstructOnTape(tape, data.values(), data.mask(), /*train=*/true);
    Var loss = WeightedMseLoss(xbar, tape.Constant(data.values()),
                               tape.Constant(data.mask()));
    tape.Backward(loss);
    adam.Step(store_, store_.CollectGrads());
  }
  return Status::OK();
}

Matrix TinyMlpModel::Reconstruct(const Dataset& data) const {
  Tape tape;
  auto* self = const_cast<TinyMlpModel*>(this);
  return self
      ->ReconstructOnTape(tape, data.values(), data.mask(), /*train=*/false)
      .value();
}

Var TinyMlpModel::ReconstructOnTape(Tape& tape, const Matrix& x,
                                    const Matrix& m, bool /*train*/) {
  SCIS_CHECK_EQ(x.cols(), d_);
  Var in = tape.Constant(ConcatCols(x, m));
  return mlp_->Forward(tape, in);
}

std::unique_ptr<GenerativeImputer> TinyMlpModel::CloneArchitecture(
    uint64_t seed) const {
  MlpConfig config = config_;
  config.init_seed = seed;
  auto clone = std::make_unique<TinyMlpModel>(std::move(config), d_);
  clone->fit_steps = fit_steps;
  clone->learning_rate = learning_rate;
  return clone;
}

}  // namespace scis::testkit
