// Slow reference oracles for differential testing. Each oracle is an
// independent, deliberately naive implementation of math the production
// code optimizes (blocked/parallel kernels, warm-started log-domain
// Sinkhorn, analytic Prop.-1 gradients, Hutchinson-probed curvature), so a
// bug has to appear in two unrelated implementations to slip through.
// Oracles are serial and unoptimized; keep instances tiny.
#ifndef SCIS_TESTKIT_ORACLES_H_
#define SCIS_TESTKIT_ORACLES_H_

#include <utility>
#include <vector>

#include "core/dim.h"
#include "models/imputer.h"
#include "tensor/matrix.h"

namespace scis::testkit {

// Schoolbook O(n³) matmul: serial triple loop, no blocking, accumulation in
// plain left-to-right order.
Matrix NaiveMatMul(const Matrix& a, const Matrix& b);

// Definition-2 masking cost written directly from the formula:
// C[i][j] = || ma_i ⊙ a_i − mb_j ⊙ b_j ||².
Matrix NaiveMaskedCost(const Matrix& a, const Matrix& ma, const Matrix& b,
                       const Matrix& mb);

// Mask-aware k-nearest-neighbour oracle over the rows of (x, mask):
// distance = mean squared difference over co-observed coordinates, rows
// with no co-observed coordinate excluded, results ascending by
// (distance, row). Direct nested loops with a full sort — independent of
// both kernels/masked_distance and index/ann_index, which the production
// searches share.
std::vector<std::pair<size_t, double>> NaiveMaskedKnn(
    const Matrix& x, const Matrix& mask, const double* query,
    const double* query_mask, size_t k,
    size_t exclude = static_cast<size_t>(-1));

struct OtOracle {
  Matrix plan;                  // optimal P*
  double transport_cost = 0.0;  // <P*, C>
  double reg_value = 0.0;       // <P*, C> + λ Σ P log P (production convention)
  int iters = 0;
  bool converged = false;
};

// Entropic OT with uniform marginals via the textbook log-domain fixed
// point φ_i = log aᵢ − LSE_j(ψ_j − C_ij/λ), iterated to ~machine precision.
// No ε-scaling, no warm start, no early exit heuristics.
OtOracle SolveEntropicOtOracle(const Matrix& cost, double lambda,
                               int max_iters = 20000, double tol = 1e-13);

// MS divergence (Def. 4) assembled from three oracle OT solves over naive
// masked costs: 2·OT(x̄,x) − OT(x̄,x̄) − OT(x,x).
double OracleMsDivergence(const Matrix& xbar, const Matrix& x, const Matrix& m,
                          double lambda);

// Rigorous a-priori bound on the entropic-OT objective gap between an exact
// cost C and an approximation C̃ (e.g. the low-rank effective cost):
//
//   |OT_λ(C̃) − OT_λ(C)| ≤ min_c ( ‖C̃ − C − c·11ᵀ‖∞ + |c| )
//
// Proof sketch: OT_λ is 1-Lipschitz in the sup norm (the optimal plans have
// total mass 1, so swapping costs moves the objective by at most the
// entrywise gap in either direction), and OT_λ(C + c·11ᵀ) = OT_λ(C) + c
// with an unchanged plan. The minimization over the shift c makes the bound
// invariant to the calibration constant the low-rank builder folds in; it
// is evaluated in closed form at c* = (min D + max D)/2 of D = C̃ − C when
// that beats c = 0 / c = min D / c = max D. O(n·m).
double EntropicOtGapBound(const Matrix& exact_cost, const Matrix& approx_cost);

// Central-difference gradient of the full DIM evaluation loss
// (DimTrainer::EvalLoss: MS divergence through the generator) with respect
// to the flattened generator parameters. O(P) loss evaluations — tiny
// models only.
std::vector<double> NumericDimLossGrad(GenerativeImputer& model,
                                       const DimOptions& opts, const Matrix& x,
                                       const Matrix& m, double h = 1e-5);

// Exact dense masked Gauss–Newton matrix (Theorem 1's H):
//   H = (1/n) Σ_{observed cells c} (∂x̄_c/∂θ)(∂x̄_c/∂θ)ᵀ
// computed with one backward pass per observed cell (O(cells·P) — tiny
// models only). This is the expectation the production Hutchinson probe
// estimates (sse.cc Prepare), before its ridge floor.
Matrix DenseGaussNewton(GenerativeImputer& model, const Dataset& data);

// Diagonal of DenseGaussNewton without forming the P×P matrix.
std::vector<double> DenseGaussNewtonDiag(GenerativeImputer& model,
                                         const Dataset& data);

}  // namespace scis::testkit

#endif  // SCIS_TESTKIT_ORACLES_H_
