#include "testkit/generators.h"

#include <sstream>

#include "data/missingness.h"

namespace scis::testkit {

Matrix GenMatrix(Rng& rng, const MatrixGen& g) {
  SCIS_CHECK(g.min_rows >= 1 && g.max_rows >= g.min_rows);
  SCIS_CHECK(g.min_cols >= 1 && g.max_cols >= g.min_cols);
  const size_t rows =
      g.min_rows + rng.UniformIndex(g.max_rows - g.min_rows + 1);
  const size_t cols =
      g.min_cols + rng.UniformIndex(g.max_cols - g.min_cols + 1);
  return g.gaussian ? rng.NormalMatrix(rows, cols, 0.0, g.stddev)
                    : rng.UniformMatrix(rows, cols, g.lo, g.hi);
}

Matrix GenMask(Rng& rng, const Matrix& values, MaskMechanism mechanism,
               double missing_rate) {
  Dataset complete = Dataset::Complete("mask_gen", values);
  switch (mechanism) {
    case MaskMechanism::kMar:
      if (values.cols() >= 2) {
        return InjectMar(complete, missing_rate, /*amp=*/3.0, rng).mask();
      }
      break;  // needs a pivot column; fall back to MCAR
    case MaskMechanism::kMnar:
      return InjectMnar(complete, missing_rate, /*sharpness=*/4.0, rng).mask();
    case MaskMechanism::kMcar:
      break;
  }
  return InjectMcar(complete, missing_rate, rng).mask();
}

Dataset GenDataset(Rng& rng, const DatasetGen& g) {
  SCIS_CHECK(g.min_rows >= 1 && g.max_rows >= g.min_rows);
  SCIS_CHECK(g.min_cols >= 1 && g.max_cols >= g.min_cols);
  size_t rows = g.min_rows + rng.UniformIndex(g.max_rows - g.min_rows + 1);
  size_t cols = g.min_cols + rng.UniformIndex(g.max_cols - g.min_cols + 1);
  double rate = rng.Uniform(g.min_missing, g.max_missing);

  enum Edge { kNone, kSingleColumn, kEmptyRow, kAllObserved };
  Edge edge = kNone;
  if (rng.Bernoulli(g.edge_case_prob)) {
    edge = static_cast<Edge>(1 + rng.UniformIndex(3));
  }
  if (edge == kSingleColumn) cols = 1;
  if (edge == kAllObserved) rate = 0.0;

  Matrix values = rng.UniformMatrix(rows, cols, g.lo, g.hi);
  Matrix mask = GenMask(rng, values, g.mechanism, rate);
  if (edge == kEmptyRow) {
    const size_t r = rng.UniformIndex(rows);
    for (size_t j = 0; j < cols; ++j) mask(r, j) = 0.0;
  }
  // Library convention: missing cells hold zero.
  for (size_t k = 0; k < values.size(); ++k) {
    if (mask[k] == 0.0) values[k] = 0.0;
  }
  return Dataset("gen", std::move(values), std::move(mask),
                 NumericColumns(cols));
}

std::string MlpConfig::ToString() const {
  std::ostringstream oss;
  oss << "dims={";
  for (size_t i = 0; i < dims.size(); ++i) {
    if (i) oss << ",";
    oss << dims[i];
  }
  oss << "} hidden_act=" << static_cast<int>(hidden_act)
      << " out_act=" << static_cast<int>(out_act) << " init_seed=" << init_seed;
  return oss.str();
}

MlpConfig GenMlpConfig(Rng& rng, size_t in_dim, size_t out_dim) {
  MlpConfig config;
  config.dims.push_back(in_dim);
  const size_t hidden_layers = rng.UniformIndex(3);  // 0, 1, or 2
  for (size_t l = 0; l < hidden_layers; ++l) {
    config.dims.push_back(2 + rng.UniformIndex(7));  // width 2..8
  }
  config.dims.push_back(out_dim);
  // Smooth activations only, so finite-difference oracles stay reliable
  // (relu kinks break central differences).
  const Activation smooth[] = {Activation::kSigmoid, Activation::kTanh,
                               Activation::kSoftplus};
  config.hidden_act = smooth[rng.UniformIndex(3)];
  config.out_act =
      rng.Bernoulli(0.5) ? Activation::kSigmoid : Activation::kNone;
  config.init_seed = rng.NextU64();
  return config;
}

std::unique_ptr<Mlp> BuildMlp(ParamStore* store, const std::string& name,
                              const MlpConfig& config) {
  Rng init_rng(config.init_seed);
  return std::make_unique<Mlp>(store, name, config.dims, config.hidden_act,
                               config.out_act, init_rng);
}

}  // namespace scis::testkit
