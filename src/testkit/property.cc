#include "testkit/property.h"

#include <cstdlib>

#include "testkit/shrink.h"

namespace scis::testkit {

namespace {

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::string ReplayLine(const std::string& name, uint64_t seed) {
  std::ostringstream oss;
  oss << "property '" << name << "' failed at seed " << seed
      << "\n  replay: SCIS_TESTKIT_SEED=" << seed
      << " ./scis_tests --gtest_filter=<this test>";
  return oss.str();
}

// Shared driver for all three runners: iterates the seed stream, and on the
// first failure lets `describe` (typed runners: regenerate + shrink) build
// the detailed report.
PropertyRunResult RunSeeds(
    const std::string& name, const PropertyOptions& opts,
    const std::function<PropertyStatus(uint64_t)>& eval,
    const std::function<void(uint64_t, PropertyRunResult&)>& describe) {
  PropertyRunResult result;
  const std::optional<uint64_t> replay = ReplaySeedFromEnv();
  const int iters = replay ? 1 : opts.iterations;
  for (int i = 0; i < iters; ++i) {
    const uint64_t seed =
        replay ? *replay : DeriveSeed(name, opts.base_seed, i);
    ++result.iterations_run;
    PropertyStatus status = eval(seed);
    if (status.ok) continue;
    result.passed = false;
    result.failing_seed = seed;
    result.failure_message = std::move(status.message);
    if (describe) describe(seed, result);
    std::ostringstream oss;
    oss << ReplayLine(name, seed) << "\n  " << result.failure_message;
    if (!result.shrunk_input.empty()) {
      oss << "\n  shrunk counterexample:\n" << result.shrunk_input;
    }
    result.report = oss.str();
    return result;
  }
  return result;
}

}  // namespace

uint64_t DeriveSeed(const std::string& name, uint64_t base_seed,
                    int iteration) {
  const uint64_t key = Fnv1a64(name) ^ base_seed;
  return SplitMix64(key + 0x9E3779B97F4A7C15ULL *
                              static_cast<uint64_t>(iteration + 1));
}

std::optional<uint64_t> ReplaySeedFromEnv() {
  const char* env = std::getenv("SCIS_TESTKIT_SEED");
  if (env == nullptr || *env == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return std::nullopt;
  return static_cast<uint64_t>(v);
}

PropertyRunResult RunPropertyImpl(
    const std::string& name,
    const std::function<PropertyStatus(uint64_t)>& property,
    const PropertyOptions& opts) {
  return RunSeeds(name, opts, property, nullptr);
}

PropertyRunResult RunMatrixPropertyImpl(
    const std::string& name, const std::function<Matrix(Rng&)>& gen,
    const std::function<PropertyStatus(const Matrix&)>& property,
    const PropertyOptions& opts) {
  auto eval = [&](uint64_t seed) {
    Rng rng(seed);
    return property(gen(rng));
  };
  auto describe = [&](uint64_t seed, PropertyRunResult& result) {
    Rng rng(seed);
    Matrix failing = gen(rng);
    int evals = opts.max_shrink_evals;
    auto still_fails = [&](const Matrix& m) {
      if (evals-- <= 0) return false;
      return !property(m).ok;
    };
    const Matrix shrunk = ShrinkMatrix(failing, still_fails);
    // Report the property's message at the *shrunk* input when available.
    PropertyStatus at_shrunk = property(shrunk);
    if (!at_shrunk.ok) result.failure_message = std::move(at_shrunk.message);
    result.shrunk_input = shrunk.ToString(/*max_rows=*/16, /*max_cols=*/16);
  };
  return RunSeeds(name, opts, eval, describe);
}

PropertyRunResult RunDatasetPropertyImpl(
    const std::string& name, const std::function<Dataset(Rng&)>& gen,
    const std::function<PropertyStatus(const Dataset&)>& property,
    const PropertyOptions& opts) {
  auto eval = [&](uint64_t seed) {
    Rng rng(seed);
    return property(gen(rng));
  };
  auto describe = [&](uint64_t seed, PropertyRunResult& result) {
    Rng rng(seed);
    Dataset failing = gen(rng);
    int evals = opts.max_shrink_evals;
    auto still_fails = [&](const Dataset& d) {
      if (evals-- <= 0) return false;
      return !property(d).ok;
    };
    const Dataset shrunk = ShrinkDataset(failing, still_fails);
    PropertyStatus at_shrunk = property(shrunk);
    if (!at_shrunk.ok) result.failure_message = std::move(at_shrunk.message);
    std::ostringstream oss;
    oss << "values:\n"
        << shrunk.values().ToString(16, 16) << "mask:\n"
        << shrunk.mask().ToString(16, 16);
    result.shrunk_input = oss.str();
  };
  return RunSeeds(name, opts, eval, describe);
}

}  // namespace scis::testkit
