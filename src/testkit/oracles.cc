#include "testkit/oracles.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/check.h"
#include "tensor/matrix_ops.h"

namespace scis::testkit {

Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  SCIS_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      out(i, j) = acc;
    }
  }
  return out;
}

Matrix NaiveMaskedCost(const Matrix& a, const Matrix& ma, const Matrix& b,
                       const Matrix& mb) {
  SCIS_CHECK(a.SameShape(ma));
  SCIS_CHECK(b.SameShape(mb));
  SCIS_CHECK_EQ(a.cols(), b.cols());
  Matrix cost(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.rows(); ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) {
        const double diff = ma(i, k) * a(i, k) - mb(j, k) * b(j, k);
        acc += diff * diff;
      }
      cost(i, j) = acc;
    }
  }
  return cost;
}

std::vector<std::pair<size_t, double>> NaiveMaskedKnn(
    const Matrix& x, const Matrix& mask, const double* query,
    const double* query_mask, size_t k, size_t exclude) {
  SCIS_CHECK(x.SameShape(mask));
  std::vector<std::pair<size_t, double>> hits;
  for (size_t r = 0; r < x.rows(); ++r) {
    if (r == exclude) continue;
    double acc = 0.0;
    size_t overlap = 0;
    for (size_t j = 0; j < x.cols(); ++j) {
      if (query_mask[j] == 1.0 && mask(r, j) == 1.0) {
        const double diff = query[j] - x(r, j);
        acc += diff * diff;
        ++overlap;
      }
    }
    if (overlap == 0) continue;
    hits.push_back({r, acc / static_cast<double>(overlap)});
  }
  std::sort(hits.begin(), hits.end(),
            [](const std::pair<size_t, double>& a,
               const std::pair<size_t, double>& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

namespace {

double LogSumExp(const std::vector<double>& v) {
  const double hi = *std::max_element(v.begin(), v.end());
  if (!std::isfinite(hi)) return hi;
  double acc = 0.0;
  for (const double x : v) acc += std::exp(x - hi);
  return hi + std::log(acc);
}

}  // namespace

OtOracle SolveEntropicOtOracle(const Matrix& cost, double lambda,
                               int max_iters, double tol) {
  SCIS_CHECK_GT(lambda, 0.0);
  const size_t n = cost.rows(), m = cost.cols();
  SCIS_CHECK(n > 0 && m > 0);
  const double log_a = -std::log(static_cast<double>(n));
  const double log_b = -std::log(static_cast<double>(m));

  // φ/ψ are log-domain scalings: P_ij = exp(φ_i + ψ_j − C_ij/λ).
  std::vector<double> phi(n, 0.0), psi(m, 0.0), buf(std::max(n, m));
  OtOracle out;
  for (int it = 0; it < max_iters; ++it) {
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) {
      buf.resize(m);
      for (size_t j = 0; j < m; ++j) buf[j] = psi[j] - cost(i, j) / lambda;
      const double next = log_a - LogSumExp(buf);
      delta = std::max(delta, std::abs(next - phi[i]));
      phi[i] = next;
    }
    for (size_t j = 0; j < m; ++j) {
      buf.resize(n);
      for (size_t i = 0; i < n; ++i) buf[i] = phi[i] - cost(i, j) / lambda;
      const double next = log_b - LogSumExp(buf);
      delta = std::max(delta, std::abs(next - psi[j]));
      psi[j] = next;
    }
    out.iters = it + 1;
    if (delta < tol) {
      out.converged = true;
      break;
    }
  }

  out.plan = Matrix(n, m);
  double cost_acc = 0.0, entropy_acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const double p = std::exp(phi[i] + psi[j] - cost(i, j) / lambda);
      out.plan(i, j) = p;
      cost_acc += p * cost(i, j);
      if (p > 0.0) entropy_acc += p * std::log(p);
    }
  }
  out.transport_cost = cost_acc;
  out.reg_value = cost_acc + lambda * entropy_acc;
  return out;
}

double OracleMsDivergence(const Matrix& xbar, const Matrix& x, const Matrix& m,
                          double lambda) {
  const Matrix cost_ab = NaiveMaskedCost(xbar, m, x, m);
  const Matrix cost_aa = NaiveMaskedCost(xbar, m, xbar, m);
  const Matrix cost_bb = NaiveMaskedCost(x, m, x, m);
  const double ab = SolveEntropicOtOracle(cost_ab, lambda).reg_value;
  const double aa = SolveEntropicOtOracle(cost_aa, lambda).reg_value;
  const double bb = SolveEntropicOtOracle(cost_bb, lambda).reg_value;
  return 2.0 * ab - aa - bb;
}

double EntropicOtGapBound(const Matrix& exact_cost,
                          const Matrix& approx_cost) {
  SCIS_CHECK(exact_cost.SameShape(approx_cost));
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  const double* c = exact_cost.data();
  const double* ct = approx_cost.data();
  for (size_t t = 0; t < exact_cost.size(); ++t) {
    const double d = ct[t] - c[t];
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  // bound(c) = max(|lo − c|, |hi − c|) + |c|, minimized over candidate
  // shifts. The sup-norm term is piecewise linear in c with its minimum at
  // the interval midpoint; adding |c| keeps the optimum at one of these
  // four points.
  const double candidates[] = {0.0, 0.5 * (lo + hi), lo, hi};
  double best = std::numeric_limits<double>::infinity();
  for (const double cand : candidates) {
    const double sup = std::max(std::abs(lo - cand), std::abs(hi - cand));
    best = std::min(best, sup + std::abs(cand));
  }
  return best;
}

std::vector<double> NumericDimLossGrad(GenerativeImputer& model,
                                       const DimOptions& opts, const Matrix& x,
                                       const Matrix& m, double h) {
  DimTrainer trainer(opts);
  ParamStore& store = model.generator_params();
  std::vector<double> theta = store.ToFlat();
  std::vector<double> grad(theta.size());
  std::vector<double> probe = theta;
  for (size_t i = 0; i < theta.size(); ++i) {
    probe[i] = theta[i] + h;
    store.FromFlat(probe);
    const double up = trainer.EvalLoss(model, x, m);
    probe[i] = theta[i] - h;
    store.FromFlat(probe);
    const double down = trainer.EvalLoss(model, x, m);
    probe[i] = theta[i];
    grad[i] = (up - down) / (2.0 * h);
  }
  store.FromFlat(theta);
  return grad;
}

namespace {

// One backward pass per observed cell; `accumulate` receives the flattened
// per-cell parameter gradient ∂x̄_c/∂θ.
void ForEachCellGradient(
    GenerativeImputer& model, const Dataset& data,
    const std::function<void(const std::vector<double>&)>& accumulate) {
  ParamStore& store = model.generator_params();
  const size_t p = store.NumScalars();
  const Matrix& x = data.values();
  const Matrix& m = data.mask();
  std::vector<double> flat;
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) {
      if (m(i, j) != 1.0) continue;
      Tape tape;
      Var xbar = model.ReconstructOnTape(tape, x, m, /*train=*/false);
      Matrix one_hot(x.rows(), x.cols());
      one_hot(i, j) = 1.0;
      Var probe = Sum(Mul(xbar, tape.Constant(std::move(one_hot))));
      tape.Backward(probe);
      std::vector<Matrix> grads = store.CollectGrads();
      flat.clear();
      flat.reserve(p);
      for (const Matrix& g : grads) {
        flat.insert(flat.end(), g.data(), g.data() + g.size());
      }
      SCIS_CHECK_EQ(flat.size(), p);
      accumulate(flat);
    }
  }
}

}  // namespace

Matrix DenseGaussNewton(GenerativeImputer& model, const Dataset& data) {
  const size_t p = model.generator_params().NumScalars();
  Matrix h(p, p);
  ForEachCellGradient(model, data, [&](const std::vector<double>& g) {
    for (size_t i = 0; i < p; ++i) {
      if (g[i] == 0.0) continue;
      double* row = h.row_data(i);
      for (size_t j = 0; j < p; ++j) row[j] += g[i] * g[j];
    }
  });
  MulScalarInPlace(h, 1.0 / static_cast<double>(data.num_rows()));
  return h;
}

std::vector<double> DenseGaussNewtonDiag(GenerativeImputer& model,
                                         const Dataset& data) {
  const size_t p = model.generator_params().NumScalars();
  std::vector<double> diag(p, 0.0);
  ForEachCellGradient(model, data, [&](const std::vector<double>& g) {
    for (size_t i = 0; i < p; ++i) diag[i] += g[i] * g[i];
  });
  for (double& d : diag) d /= static_cast<double>(data.num_rows());
  return diag;
}

}  // namespace scis::testkit
