// Parameter (de)serialization: a plain-text format so trained models can
// be checkpointed and shipped (e.g. train SCIS once, impute many files
// with scis_impute, or serve them online with scis_serve).
//
// v1 (weights only, legacy):
//   scis-params v1
//   <num_params>
//   <name> <rows> <cols>
//   <rows*cols doubles, space-separated, full precision>
//   ...
//
// v2 (self-contained: weights + the metadata needed to impute new rows):
//   scis-params v2
//   model <architecture tag, e.g. GAIN>
//   columns <d>
//   <kind:int> <num_categories:int> <name, rest of line>   x d
//   normalizer <d>
//   <d lo values>
//   <d hi values>
//   params <num_params>
//   <name> <rows> <cols>
//   <values>
//   ...
//
// v3 (binary, mmap-able — the serving fleet's cold-start format):
//   [8 bytes]  magic "scisckp3"
//   [u32]      endian tag 0x01020304 (little-endian files only)
//   [u32]      model tag length, then the tag bytes
//   [u32]      column count d, then per column:
//                [u32 kind][u32 num_categories][u32 name_len][name bytes]
//   [d f64]    normalizer lo, [d f64] normalizer hi
//   [u32]      param count, then per param:
//                [u32 name_len][name bytes][u64 rows][u64 cols]
//                [u64 offset]  — element offset into the value blob
//   [pad]      zero padding to a 64-byte boundary
//   [blob]     all parameter values, row-major f64, each param aligned to
//              64 bytes within the blob
// Integers and doubles are little-endian host layout; the whole file can be
// mmap-ed and the value blob used in place (zero-copy weight loading via
// MappedCheckpoint — engines keep the mapping alive for as long as they
// serve from it).
//
// LoadParams/LoadCheckpoint accept all three versions, so checkpoints
// written before the serving subsystem keep loading.
#ifndef SCIS_NN_SERIALIZE_H_
#define SCIS_NN_SERIALIZE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/param_store.h"

namespace scis {

// Per-column schema entry mirrored from data/dataset.h's ColumnMeta,
// expressed in plain types so nn stays independent of the data module.
struct CheckpointColumn {
  std::string name;
  int kind = 0;  // static_cast<int>(ColumnKind)
  int num_categories = 0;
};

// Everything beyond the weights that a loaded model needs to impute raw
// rows: the architecture tag, the column schema, and the min-max stats the
// training pipeline normalized with.
struct CheckpointMeta {
  std::string model;  // e.g. "GAIN"
  std::vector<CheckpointColumn> columns;
  std::vector<double> norm_lo, norm_hi;
};

struct NamedParam {
  std::string name;
  Matrix value;
};

struct Checkpoint {
  int version = 0;  // 1 = weights only, 2 = self-contained
  CheckpointMeta meta;
  std::vector<NamedParam> params;
};

// Writes every parameter in `store` to `path` (v1, weights only).
Status SaveParams(const ParamStore& store, const std::string& path);

// Writes a self-contained v2 checkpoint: `meta` plus every parameter in
// `store`. meta.columns / norm_lo / norm_hi must agree in size.
Status SaveCheckpoint(const ParamStore& store, const CheckpointMeta& meta,
                      const std::string& path);

// Writes a self-contained v3 binary checkpoint (see format above). Same
// content as SaveCheckpoint, but mmap-able: MappedCheckpoint::Map serves the
// weights straight out of the page cache with zero copies.
Status SaveCheckpointBinary(const ParamStore& store, const CheckpointMeta& meta,
                            const std::string& path);

// True when the file starts with the v3 binary magic.
bool IsBinaryCheckpoint(const std::string& path);

// A v3 checkpoint mapped read-only into memory. Parameter values are views
// into the mapping (no copies); holders of a view must keep the
// MappedCheckpoint alive, which is why Map hands out a shared_ptr.
class MappedCheckpoint {
 public:
  struct ParamView {
    std::string name;
    size_t rows = 0, cols = 0;
    const double* data = nullptr;  // rows*cols doubles inside the mapping
  };

  static Result<std::shared_ptr<const MappedCheckpoint>> Map(
      const std::string& path);

  ~MappedCheckpoint();
  MappedCheckpoint(const MappedCheckpoint&) = delete;
  MappedCheckpoint& operator=(const MappedCheckpoint&) = delete;

  const CheckpointMeta& meta() const { return meta_; }
  const std::vector<ParamView>& params() const { return params_; }

  // Deep-copies into an owning Checkpoint (version 3) — the compatibility
  // bridge for LoadCheckpoint/LoadParams callers.
  Checkpoint ToCheckpoint() const;

 private:
  MappedCheckpoint() = default;

  CheckpointMeta meta_;
  std::vector<ParamView> params_;
  void* map_base_ = nullptr;
  size_t map_len_ = 0;
};

// Reads a v1, v2, or v3 checkpoint without needing a pre-built store (the
// serving path, which reconstructs the network from the file alone). v3
// files are mapped, copied, and unmapped; use MappedCheckpoint::Map directly
// to keep the zero-copy views.
Result<Checkpoint> LoadCheckpoint(const std::string& path);

// Restores values into an already-built `store`; parameter names, count,
// order, and shapes must match exactly (architecture is not rebuilt).
// Accepts v1 and v2 files; v2 metadata is ignored.
Status LoadParams(ParamStore& store, const std::string& path);

}  // namespace scis

#endif  // SCIS_NN_SERIALIZE_H_
