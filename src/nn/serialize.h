// Parameter (de)serialization: a plain-text format so trained models can
// be checkpointed and shipped (e.g. train SCIS once, impute many files
// with scis_impute, or serve them online with scis_serve).
//
// v1 (weights only, legacy):
//   scis-params v1
//   <num_params>
//   <name> <rows> <cols>
//   <rows*cols doubles, space-separated, full precision>
//   ...
//
// v2 (self-contained: weights + the metadata needed to impute new rows):
//   scis-params v2
//   model <architecture tag, e.g. GAIN>
//   columns <d>
//   <kind:int> <num_categories:int> <name, rest of line>   x d
//   normalizer <d>
//   <d lo values>
//   <d hi values>
//   params <num_params>
//   <name> <rows> <cols>
//   <values>
//   ...
//
// LoadParams accepts both versions, so v1 checkpoints written before the
// serving subsystem keep loading.
#ifndef SCIS_NN_SERIALIZE_H_
#define SCIS_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/param_store.h"

namespace scis {

// Per-column schema entry mirrored from data/dataset.h's ColumnMeta,
// expressed in plain types so nn stays independent of the data module.
struct CheckpointColumn {
  std::string name;
  int kind = 0;  // static_cast<int>(ColumnKind)
  int num_categories = 0;
};

// Everything beyond the weights that a loaded model needs to impute raw
// rows: the architecture tag, the column schema, and the min-max stats the
// training pipeline normalized with.
struct CheckpointMeta {
  std::string model;  // e.g. "GAIN"
  std::vector<CheckpointColumn> columns;
  std::vector<double> norm_lo, norm_hi;
};

struct NamedParam {
  std::string name;
  Matrix value;
};

struct Checkpoint {
  int version = 0;  // 1 = weights only, 2 = self-contained
  CheckpointMeta meta;
  std::vector<NamedParam> params;
};

// Writes every parameter in `store` to `path` (v1, weights only).
Status SaveParams(const ParamStore& store, const std::string& path);

// Writes a self-contained v2 checkpoint: `meta` plus every parameter in
// `store`. meta.columns / norm_lo / norm_hi must agree in size.
Status SaveCheckpoint(const ParamStore& store, const CheckpointMeta& meta,
                      const std::string& path);

// Reads a v1 or v2 checkpoint without needing a pre-built store (the
// serving path, which reconstructs the network from the file alone).
Result<Checkpoint> LoadCheckpoint(const std::string& path);

// Restores values into an already-built `store`; parameter names, count,
// order, and shapes must match exactly (architecture is not rebuilt).
// Accepts v1 and v2 files; v2 metadata is ignored.
Status LoadParams(ParamStore& store, const std::string& path);

}  // namespace scis

#endif  // SCIS_NN_SERIALIZE_H_
