// Parameter (de)serialization: a plain-text format so trained models can
// be checkpointed and shipped (e.g. train SCIS once, impute many files
// with tools/scis_impute). Format:
//   scis-params v1
//   <num_params>
//   <name> <rows> <cols>
//   <rows*cols doubles, space-separated, full precision>
//   ...
#ifndef SCIS_NN_SERIALIZE_H_
#define SCIS_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/param_store.h"

namespace scis {

// Writes every parameter in `store` to `path`.
Status SaveParams(const ParamStore& store, const std::string& path);

// Restores values into an already-built `store`; parameter names, count,
// order, and shapes must match exactly (architecture is not serialized).
Status LoadParams(ParamStore& store, const std::string& path);

}  // namespace scis

#endif  // SCIS_NN_SERIALIZE_H_
