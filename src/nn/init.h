// Weight initializers.
#ifndef SCIS_NN_INIT_H_
#define SCIS_NN_INIT_H_

#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace scis {

enum class InitKind {
  kXavierUniform,  // U(±sqrt(6/(fan_in+fan_out))) — default for sigmoid/tanh
  kHeNormal,       // N(0, sqrt(2/fan_in)) — for relu
  kZeros,
};

// (fan_in, fan_out)-shaped weight matrix initialized per `kind`.
Matrix InitWeight(InitKind kind, size_t fan_in, size_t fan_out, Rng& rng);

}  // namespace scis

#endif  // SCIS_NN_INIT_H_
