#include "nn/param_store.h"

namespace scis {

ParamStore::ParamId ParamStore::Add(std::string name, Matrix init) {
  params_.push_back(Entry{std::move(name), std::move(init), 0, Var()});
  return params_.size() - 1;
}

Var ParamStore::Bind(Tape& tape, ParamId id) {
  SCIS_CHECK_LT(id, params_.size());
  Entry& e = params_[id];
  // Re-binding on the same tape within one step returns the same leaf, so a
  // parameter shared by two sub-networks accumulates both gradients.
  // Tapes are identified by id, not address (stack tapes recycle addresses).
  if (e.bound_tape_id == tape.id() && e.bound_var.valid()) return e.bound_var;
  e.bound_tape_id = tape.id();
  e.bound_var = tape.LeafRef(&e.value);
  return e.bound_var;
}

std::vector<Matrix> ParamStore::CollectGrads() {
  std::vector<Matrix> grads;
  grads.reserve(params_.size());
  for (Entry& e : params_) {
    if (e.bound_tape_id != 0 && e.bound_var.valid()) {
      grads.push_back(e.bound_var.grad());
    } else {
      grads.push_back(Matrix(e.value.rows(), e.value.cols()));
    }
    e.bound_tape_id = 0;
    e.bound_var = Var();
  }
  return grads;
}

void ParamStore::CollectGradsInto(std::vector<const Matrix*>* out) {
  out->clear();
  out->reserve(params_.size());
  for (Entry& e : params_) {
    if (e.bound_tape_id != 0 && e.bound_var.valid()) {
      out->push_back(&e.bound_var.grad());
    } else {
      out->push_back(nullptr);
    }
    e.bound_tape_id = 0;
    e.bound_var = Var();
  }
}

void ParamStore::DropBindings() {
  for (Entry& e : params_) {
    e.bound_tape_id = 0;
    e.bound_var = Var();
  }
}

size_t ParamStore::NumScalars() const {
  size_t n = 0;
  for (const Entry& e : params_) n += e.value.size();
  return n;
}

std::vector<double> ParamStore::ToFlat() const {
  std::vector<double> flat;
  flat.reserve(NumScalars());
  for (const Entry& e : params_) {
    flat.insert(flat.end(), e.value.data(), e.value.data() + e.value.size());
  }
  return flat;
}

void ParamStore::FromFlat(const std::vector<double>& flat) {
  SCIS_CHECK_EQ(flat.size(), NumScalars());
  size_t off = 0;
  for (Entry& e : params_) {
    std::copy(flat.begin() + off, flat.begin() + off + e.value.size(),
              e.value.data());
    off += e.value.size();
  }
}

}  // namespace scis
