// Central registry for trainable parameters.
//
// Parameters live here as plain matrices between steps. Each training step
// the model Bind()s them onto a fresh Tape as differentiable leaves, runs
// forward/backward, then CollectGrads() gathers the leaf gradients in
// registration order for the optimizer. The store can also flatten all
// parameters into one vector — the "θ" that SSE's Theorem 1 reasons about.
#ifndef SCIS_NN_PARAM_STORE_H_
#define SCIS_NN_PARAM_STORE_H_

#include <string>
#include <vector>

#include "autodiff/tape.h"
#include "tensor/matrix.h"

namespace scis {

class ParamStore {
 public:
  using ParamId = size_t;

  ParamId Add(std::string name, Matrix init);

  size_t size() const { return params_.size(); }
  const std::string& name(ParamId id) const { return params_[id].name; }
  Matrix& value(ParamId id) { return params_[id].value; }
  const Matrix& value(ParamId id) const { return params_[id].value; }

  // Creates a differentiable leaf for param `id` on `tape` and remembers the
  // binding so CollectGrads can read its gradient after Backward(). The leaf
  // borrows the stored value (LeafRef) — no copy; do not Add() parameters
  // while bindings are live (entries would relocate under the tape).
  Var Bind(Tape& tape, ParamId id);

  // Gradients of all parameters w.r.t. the last Backward() on the bound
  // tape, in registration order (zero matrices for unbound params).
  // Clears the bindings.
  std::vector<Matrix> CollectGrads();

  // Zero-copy variant: fills `out` with views of the tape-owned gradient
  // accumulators in registration order; nullptr marks a parameter that was
  // never bound (i.e. a structurally zero gradient the optimizer may skip).
  // Clears the bindings. The pointers stay valid until the bound tape is
  // Clear()ed or runs another Backward().
  void CollectGradsInto(std::vector<const Matrix*>* out);

  // Forgets the current tape bindings without touching gradients (for
  // tapes that were only used for evaluation).
  void DropBindings();

  // Total number of scalar parameters.
  size_t NumScalars() const;
  // Flattens all parameter values into one vector (registration order,
  // row-major within each matrix).
  std::vector<double> ToFlat() const;
  // Restores parameter values from a flat vector produced by ToFlat().
  void FromFlat(const std::vector<double>& flat);

 private:
  struct Entry {
    std::string name;
    Matrix value;
    uint64_t bound_tape_id = 0;  // Tape::id(), 0 = unbound
    Var bound_var;
  };
  std::vector<Entry> params_;
};

}  // namespace scis

#endif  // SCIS_NN_PARAM_STORE_H_
