// First-order optimizers over a ParamStore. The paper trains all deep
// models with ADAM (lr 0.001) and the downstream predictors with lr 0.005.
//
// The primary Step takes gradient *views* (ParamStore::CollectGradsInto):
// const Matrix* per parameter in registration order, nullptr meaning a
// structurally zero gradient. Views point straight at the tape's pooled
// accumulators, so the optimizer path copies no gradient data. The
// by-value overload remains for callers that materialize gradients
// (CollectGrads) and is bit-identical to the view path.
#ifndef SCIS_NN_OPTIMIZER_H_
#define SCIS_NN_OPTIMIZER_H_

#include <vector>

#include "nn/param_store.h"

namespace scis {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  // Applies one update from gradient views aligned with the store's
  // registration order; grads[i] == nullptr is a zero gradient.
  virtual void Step(ParamStore& store,
                    const std::vector<const Matrix*>& grads) = 0;
  // Convenience for materialized gradients (ParamStore::CollectGrads).
  void Step(ParamStore& store, const std::vector<Matrix>& grads) {
    std::vector<const Matrix*> views;
    views.reserve(grads.size());
    for (const Matrix& g : grads) views.push_back(&g);
    Step(store, views);
  }
  virtual void Reset() = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0)
      : lr_(lr), momentum_(momentum) {}

  using Optimizer::Step;
  void Step(ParamStore& store,
            const std::vector<const Matrix*>& grads) override;
  void Reset() override { velocity_.clear(); }

 private:
  double lr_, momentum_;
  std::vector<Matrix> velocity_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  using Optimizer::Step;
  void Step(ParamStore& store,
            const std::vector<const Matrix*>& grads) override;
  void Reset() override {
    m_.clear();
    v_.clear();
    t_ = 0;
  }

  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }

 private:
  double lr_, beta1_, beta2_, eps_;
  std::vector<Matrix> m_, v_;
  long t_ = 0;
};

}  // namespace scis

#endif  // SCIS_NN_OPTIMIZER_H_
