#include "nn/init.h"

#include <cmath>

namespace scis {

Matrix InitWeight(InitKind kind, size_t fan_in, size_t fan_out, Rng& rng) {
  switch (kind) {
    case InitKind::kXavierUniform: {
      const double limit =
          std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
      return rng.UniformMatrix(fan_in, fan_out, -limit, limit);
    }
    case InitKind::kHeNormal: {
      const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
      return rng.NormalMatrix(fan_in, fan_out, 0.0, stddev);
    }
    case InitKind::kZeros:
      return Matrix::Zeros(fan_in, fan_out);
  }
  return Matrix::Zeros(fan_in, fan_out);
}

}  // namespace scis
