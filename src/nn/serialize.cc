#include "nn/serialize.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace scis {
namespace {

void WriteParamBlock(std::ofstream& out, const ParamStore& store) {
  for (size_t id = 0; id < store.size(); ++id) {
    const Matrix& m = store.value(id);
    out << store.name(id) << " " << m.rows() << " " << m.cols() << "\n";
    for (size_t k = 0; k < m.size(); ++k) {
      if (k) out << ' ';
      out << m[k];
    }
    out << "\n";
  }
}

Status ReadParamBlock(std::ifstream& in, size_t count,
                      const std::string& path,
                      std::vector<NamedParam>* params) {
  params->reserve(count);
  for (size_t id = 0; id < count; ++id) {
    std::string name;
    size_t rows = 0, cols = 0;
    in >> name >> rows >> cols;
    if (!in) return Status::IoError("truncated header in " + path);
    Matrix m(rows, cols);
    for (size_t k = 0; k < m.size(); ++k) in >> m[k];
    if (!in) return Status::IoError("truncated values in " + path);
    params->push_back({std::move(name), std::move(m)});
  }
  return Status::OK();
}

// Expects the literal keyword next in the stream; any other token means a
// malformed (or hand-edited) file.
Status ExpectKeyword(std::ifstream& in, const char* keyword,
                     const std::string& path) {
  std::string tok;
  in >> tok;
  if (!in || tok != keyword) {
    return Status::InvalidArgument("expected '" + std::string(keyword) +
                                   "' section in " + path);
  }
  return Status::OK();
}

}  // namespace

Status SaveParams(const ParamStore& store, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "scis-params v1\n" << store.size() << "\n";
  out << std::setprecision(17);
  WriteParamBlock(out, store);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status SaveCheckpoint(const ParamStore& store, const CheckpointMeta& meta,
                      const std::string& path) {
  if (meta.model.empty()) {
    return Status::InvalidArgument("checkpoint meta needs a model tag");
  }
  if (meta.columns.empty() || meta.norm_lo.size() != meta.columns.size() ||
      meta.norm_hi.size() != meta.columns.size()) {
    return Status::InvalidArgument(
        "checkpoint meta columns/normalizer sizes disagree");
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "scis-params v2\n";
  out << "model " << meta.model << "\n";
  out << "columns " << meta.columns.size() << "\n";
  for (const CheckpointColumn& c : meta.columns) {
    out << c.kind << " " << c.num_categories << " " << c.name << "\n";
  }
  out << std::setprecision(17);
  out << "normalizer " << meta.columns.size() << "\n";
  for (size_t j = 0; j < meta.norm_lo.size(); ++j) {
    if (j) out << ' ';
    out << meta.norm_lo[j];
  }
  out << "\n";
  for (size_t j = 0; j < meta.norm_hi.size(); ++j) {
    if (j) out << ' ';
    out << meta.norm_hi[j];
  }
  out << "\n";
  out << "params " << store.size() << "\n";
  WriteParamBlock(out, store);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Checkpoint> LoadCheckpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string magic, version;
  in >> magic >> version;
  if (!in || magic != "scis-params" ||
      (version != "v1" && version != "v2")) {
    return Status::InvalidArgument("not a scis-params v1/v2 file: " + path);
  }
  Checkpoint ckpt;
  if (version == "v1") {
    ckpt.version = 1;
    size_t count = 0;
    in >> count;
    if (!in) return Status::IoError("truncated header in " + path);
    SCIS_RETURN_NOT_OK(ReadParamBlock(in, count, path, &ckpt.params));
    return ckpt;
  }
  ckpt.version = 2;
  SCIS_RETURN_NOT_OK(ExpectKeyword(in, "model", path));
  in >> ckpt.meta.model;
  if (!in) return Status::IoError("truncated model tag in " + path);
  SCIS_RETURN_NOT_OK(ExpectKeyword(in, "columns", path));
  size_t d = 0;
  in >> d;
  if (!in || d == 0) {
    return Status::InvalidArgument("bad column count in " + path);
  }
  ckpt.meta.columns.resize(d);
  for (size_t j = 0; j < d; ++j) {
    CheckpointColumn& c = ckpt.meta.columns[j];
    in >> c.kind >> c.num_categories;
    if (!in) return Status::IoError("truncated column schema in " + path);
    // The name is the rest of the line (CSV headers may contain spaces).
    std::getline(in, c.name);
    if (!c.name.empty() && c.name.front() == ' ') c.name.erase(0, 1);
  }
  SCIS_RETURN_NOT_OK(ExpectKeyword(in, "normalizer", path));
  size_t nd = 0;
  in >> nd;
  if (!in || nd != d) {
    return Status::InvalidArgument("normalizer size disagrees with columns in " +
                                   path);
  }
  ckpt.meta.norm_lo.resize(d);
  ckpt.meta.norm_hi.resize(d);
  for (size_t j = 0; j < d; ++j) in >> ckpt.meta.norm_lo[j];
  for (size_t j = 0; j < d; ++j) in >> ckpt.meta.norm_hi[j];
  if (!in) return Status::IoError("truncated normalizer stats in " + path);
  SCIS_RETURN_NOT_OK(ExpectKeyword(in, "params", path));
  size_t count = 0;
  in >> count;
  if (!in) return Status::IoError("truncated params header in " + path);
  SCIS_RETURN_NOT_OK(ReadParamBlock(in, count, path, &ckpt.params));
  return ckpt;
}

Status LoadParams(ParamStore& store, const std::string& path) {
  SCIS_ASSIGN_OR_RETURN(Checkpoint ckpt, LoadCheckpoint(path));
  if (ckpt.params.size() != store.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: file has " +
        std::to_string(ckpt.params.size()) + ", store has " +
        std::to_string(store.size()));
  }
  for (size_t id = 0; id < ckpt.params.size(); ++id) {
    const NamedParam& p = ckpt.params[id];
    if (p.name != store.name(id)) {
      return Status::InvalidArgument("parameter name mismatch at index " +
                                     std::to_string(id) + ": file '" + p.name +
                                     "' vs store '" + store.name(id) + "'");
    }
    Matrix& m = store.value(id);
    if (p.value.rows() != m.rows() || p.value.cols() != m.cols()) {
      return Status::InvalidArgument("shape mismatch for " + p.name);
    }
    m = p.value;
  }
  return Status::OK();
}

}  // namespace scis
