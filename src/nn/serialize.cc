#include "nn/serialize.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace scis {
namespace {

void WriteParamBlock(std::ofstream& out, const ParamStore& store) {
  for (size_t id = 0; id < store.size(); ++id) {
    const Matrix& m = store.value(id);
    out << store.name(id) << " " << m.rows() << " " << m.cols() << "\n";
    for (size_t k = 0; k < m.size(); ++k) {
      if (k) out << ' ';
      out << m[k];
    }
    out << "\n";
  }
}

Status ReadParamBlock(std::ifstream& in, size_t count,
                      const std::string& path,
                      std::vector<NamedParam>* params) {
  params->reserve(count);
  for (size_t id = 0; id < count; ++id) {
    std::string name;
    size_t rows = 0, cols = 0;
    in >> name >> rows >> cols;
    if (!in) return Status::IoError("truncated header in " + path);
    Matrix m(rows, cols);
    for (size_t k = 0; k < m.size(); ++k) in >> m[k];
    if (!in) return Status::IoError("truncated values in " + path);
    params->push_back({std::move(name), std::move(m)});
  }
  return Status::OK();
}

// Expects the literal keyword next in the stream; any other token means a
// malformed (or hand-edited) file.
Status ExpectKeyword(std::ifstream& in, const char* keyword,
                     const std::string& path) {
  std::string tok;
  in >> tok;
  if (!in || tok != keyword) {
    return Status::InvalidArgument("expected '" + std::string(keyword) +
                                   "' section in " + path);
  }
  return Status::OK();
}

// ---- v3 binary format helpers ----

constexpr char kBinMagic[8] = {'s', 'c', 'i', 's', 'c', 'k', 'p', '3'};
constexpr uint32_t kEndianTag = 0x01020304;
constexpr size_t kBlobAlign = 64;  // bytes; params start cache-line aligned

void PutBytes(const void* p, size_t n, std::string* out) {
  out->append(static_cast<const char*>(p), n);
}
void PutU32(uint32_t v, std::string* out) { PutBytes(&v, sizeof(v), out); }
void PutU64(uint64_t v, std::string* out) { PutBytes(&v, sizeof(v), out); }
void PutStr(const std::string& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  PutBytes(s.data(), s.size(), out);
}

// Bounds-checked reader over the mapped bytes; every Get fails cleanly on a
// truncated or hostile file instead of walking off the mapping.
class BinReader {
 public:
  BinReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  bool GetBytes(void* out, size_t n) {
    if (len_ - at_ < n) return false;
    std::memcpy(out, data_ + at_, n);
    at_ += n;
    return true;
  }
  bool GetU32(uint32_t* v) { return GetBytes(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return GetBytes(v, sizeof(*v)); }
  bool GetStr(std::string* s, size_t max_len = 1u << 20) {
    uint32_t n = 0;
    if (!GetU32(&n) || n > max_len || len_ - at_ < n) return false;
    s->assign(reinterpret_cast<const char*>(data_ + at_), n);
    at_ += n;
    return true;
  }
  bool GetF64Array(double* out, size_t count) {
    return GetBytes(out, count * sizeof(double));
  }
  size_t at() const { return at_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t at_ = 0;
};

}  // namespace

Status SaveCheckpointBinary(const ParamStore& store, const CheckpointMeta& meta,
                            const std::string& path) {
  if (meta.model.empty()) {
    return Status::InvalidArgument("checkpoint meta needs a model tag");
  }
  if (meta.columns.empty() || meta.norm_lo.size() != meta.columns.size() ||
      meta.norm_hi.size() != meta.columns.size()) {
    return Status::InvalidArgument(
        "checkpoint meta columns/normalizer sizes disagree");
  }
  std::string head;
  head.append(kBinMagic, sizeof(kBinMagic));
  PutU32(kEndianTag, &head);
  PutStr(meta.model, &head);
  PutU32(static_cast<uint32_t>(meta.columns.size()), &head);
  for (const CheckpointColumn& c : meta.columns) {
    PutU32(static_cast<uint32_t>(c.kind), &head);
    PutU32(static_cast<uint32_t>(c.num_categories), &head);
    PutStr(c.name, &head);
  }
  PutBytes(meta.norm_lo.data(), meta.norm_lo.size() * sizeof(double), &head);
  PutBytes(meta.norm_hi.data(), meta.norm_hi.size() * sizeof(double), &head);
  PutU32(static_cast<uint32_t>(store.size()), &head);
  // Element offsets into the blob, each param 64-byte aligned.
  constexpr size_t kAlignDoubles = kBlobAlign / sizeof(double);
  uint64_t blob_doubles = 0;
  for (size_t id = 0; id < store.size(); ++id) {
    const Matrix& m = store.value(id);
    PutStr(store.name(id), &head);
    PutU64(m.rows(), &head);
    PutU64(m.cols(), &head);
    PutU64(blob_doubles, &head);
    blob_doubles += (m.size() + kAlignDoubles - 1) / kAlignDoubles *
                    kAlignDoubles;
  }
  // Pad the header to a 64-byte boundary so blob offsets are file offsets
  // modulo alignment (mmap bases are page-aligned, so this suffices).
  head.append((kBlobAlign - head.size() % kBlobAlign) % kBlobAlign, '\0');

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(head.data(), static_cast<std::streamsize>(head.size()));
  std::vector<double> pad(kAlignDoubles, 0.0);
  for (size_t id = 0; id < store.size(); ++id) {
    const Matrix& m = store.value(id);
    out.write(reinterpret_cast<const char*>(m.data()),
              static_cast<std::streamsize>(m.size() * sizeof(double)));
    const size_t tail = m.size() % kAlignDoubles;
    if (tail != 0) {
      out.write(reinterpret_cast<const char*>(pad.data()),
                static_cast<std::streamsize>((kAlignDoubles - tail) *
                                             sizeof(double)));
    }
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

bool IsBinaryCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[sizeof(kBinMagic)] = {};
  in.read(magic, sizeof(magic));
  return in && std::memcmp(magic, kBinMagic, sizeof(kBinMagic)) == 0;
}

MappedCheckpoint::~MappedCheckpoint() {
  if (map_base_ != nullptr) ::munmap(map_base_, map_len_);
}

Result<std::shared_ptr<const MappedCheckpoint>> MappedCheckpoint::Map(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IoError("cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IoError("stat " + path + " failed");
  }
  const size_t len = static_cast<size_t>(st.st_size);
  if (len < sizeof(kBinMagic) + sizeof(uint32_t)) {
    ::close(fd);
    return Status::InvalidArgument(path + " is too short to be a checkpoint");
  }
  void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) return Status::IoError("mmap " + path + " failed");

  auto ckpt = std::shared_ptr<MappedCheckpoint>(new MappedCheckpoint());
  ckpt->map_base_ = base;
  ckpt->map_len_ = len;
  const uint8_t* bytes = static_cast<const uint8_t*>(base);

  BinReader r(bytes, len);
  char magic[sizeof(kBinMagic)];
  uint32_t endian = 0;
  if (!r.GetBytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kBinMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("not a scis-params v3 binary file: " + path);
  }
  if (!r.GetU32(&endian) || endian != kEndianTag) {
    return Status::InvalidArgument("checkpoint endianness mismatch: " + path);
  }
  CheckpointMeta& meta = ckpt->meta_;
  uint32_t d = 0;
  if (!r.GetStr(&meta.model) || !r.GetU32(&d) || d == 0) {
    return Status::InvalidArgument("truncated v3 header in " + path);
  }
  meta.columns.resize(d);
  for (CheckpointColumn& c : meta.columns) {
    uint32_t kind = 0, cats = 0;
    if (!r.GetU32(&kind) || !r.GetU32(&cats) || !r.GetStr(&c.name)) {
      return Status::InvalidArgument("truncated column schema in " + path);
    }
    c.kind = static_cast<int>(kind);
    c.num_categories = static_cast<int>(cats);
  }
  meta.norm_lo.resize(d);
  meta.norm_hi.resize(d);
  if (!r.GetF64Array(meta.norm_lo.data(), d) ||
      !r.GetF64Array(meta.norm_hi.data(), d)) {
    return Status::InvalidArgument("truncated normalizer stats in " + path);
  }
  uint32_t count = 0;
  if (!r.GetU32(&count) || count > (1u << 20)) {
    return Status::InvalidArgument("bad param count in " + path);
  }
  struct PendingParam {
    std::string name;
    uint64_t rows, cols, offset;
  };
  std::vector<PendingParam> pending(count);
  for (PendingParam& p : pending) {
    if (!r.GetStr(&p.name) || !r.GetU64(&p.rows) || !r.GetU64(&p.cols) ||
        !r.GetU64(&p.offset)) {
      return Status::InvalidArgument("truncated param table in " + path);
    }
  }
  const size_t blob_start =
      (r.at() + kBlobAlign - 1) / kBlobAlign * kBlobAlign;
  if (blob_start > len) {
    return Status::InvalidArgument("truncated value blob in " + path);
  }
  const size_t blob_doubles = (len - blob_start) / sizeof(double);
  const double* blob = reinterpret_cast<const double*>(bytes + blob_start);
  ckpt->params_.reserve(count);
  for (PendingParam& p : pending) {
    // Overflow-safe bounds check against the mapped blob.
    if (p.rows == 0 || p.cols == 0 ||
        p.cols > blob_doubles || p.rows > blob_doubles / p.cols ||
        p.offset > blob_doubles - p.rows * p.cols) {
      return Status::InvalidArgument("param '" + p.name +
                                     "' overruns the value blob in " + path);
    }
    ParamView view;
    view.name = std::move(p.name);
    view.rows = static_cast<size_t>(p.rows);
    view.cols = static_cast<size_t>(p.cols);
    view.data = blob + p.offset;
    ckpt->params_.push_back(std::move(view));
  }
  return std::shared_ptr<const MappedCheckpoint>(std::move(ckpt));
}

Checkpoint MappedCheckpoint::ToCheckpoint() const {
  Checkpoint ckpt;
  ckpt.version = 3;
  ckpt.meta = meta_;
  ckpt.params.reserve(params_.size());
  for (const ParamView& p : params_) {
    Matrix m(p.rows, p.cols);
    std::memcpy(m.data(), p.data, p.rows * p.cols * sizeof(double));
    ckpt.params.push_back({p.name, std::move(m)});
  }
  return ckpt;
}

Status SaveParams(const ParamStore& store, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "scis-params v1\n" << store.size() << "\n";
  out << std::setprecision(17);
  WriteParamBlock(out, store);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status SaveCheckpoint(const ParamStore& store, const CheckpointMeta& meta,
                      const std::string& path) {
  if (meta.model.empty()) {
    return Status::InvalidArgument("checkpoint meta needs a model tag");
  }
  if (meta.columns.empty() || meta.norm_lo.size() != meta.columns.size() ||
      meta.norm_hi.size() != meta.columns.size()) {
    return Status::InvalidArgument(
        "checkpoint meta columns/normalizer sizes disagree");
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "scis-params v2\n";
  out << "model " << meta.model << "\n";
  out << "columns " << meta.columns.size() << "\n";
  for (const CheckpointColumn& c : meta.columns) {
    out << c.kind << " " << c.num_categories << " " << c.name << "\n";
  }
  out << std::setprecision(17);
  out << "normalizer " << meta.columns.size() << "\n";
  for (size_t j = 0; j < meta.norm_lo.size(); ++j) {
    if (j) out << ' ';
    out << meta.norm_lo[j];
  }
  out << "\n";
  for (size_t j = 0; j < meta.norm_hi.size(); ++j) {
    if (j) out << ' ';
    out << meta.norm_hi[j];
  }
  out << "\n";
  out << "params " << store.size() << "\n";
  WriteParamBlock(out, store);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Checkpoint> LoadCheckpoint(const std::string& path) {
  if (IsBinaryCheckpoint(path)) {
    SCIS_ASSIGN_OR_RETURN(std::shared_ptr<const MappedCheckpoint> mapped,
                          MappedCheckpoint::Map(path));
    return mapped->ToCheckpoint();
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string magic, version;
  in >> magic >> version;
  if (!in || magic != "scis-params" ||
      (version != "v1" && version != "v2")) {
    return Status::InvalidArgument("not a scis-params v1/v2 file: " + path);
  }
  Checkpoint ckpt;
  if (version == "v1") {
    ckpt.version = 1;
    size_t count = 0;
    in >> count;
    if (!in) return Status::IoError("truncated header in " + path);
    SCIS_RETURN_NOT_OK(ReadParamBlock(in, count, path, &ckpt.params));
    return ckpt;
  }
  ckpt.version = 2;
  SCIS_RETURN_NOT_OK(ExpectKeyword(in, "model", path));
  in >> ckpt.meta.model;
  if (!in) return Status::IoError("truncated model tag in " + path);
  SCIS_RETURN_NOT_OK(ExpectKeyword(in, "columns", path));
  size_t d = 0;
  in >> d;
  if (!in || d == 0) {
    return Status::InvalidArgument("bad column count in " + path);
  }
  ckpt.meta.columns.resize(d);
  for (size_t j = 0; j < d; ++j) {
    CheckpointColumn& c = ckpt.meta.columns[j];
    in >> c.kind >> c.num_categories;
    if (!in) return Status::IoError("truncated column schema in " + path);
    // The name is the rest of the line (CSV headers may contain spaces).
    std::getline(in, c.name);
    if (!c.name.empty() && c.name.front() == ' ') c.name.erase(0, 1);
  }
  SCIS_RETURN_NOT_OK(ExpectKeyword(in, "normalizer", path));
  size_t nd = 0;
  in >> nd;
  if (!in || nd != d) {
    return Status::InvalidArgument("normalizer size disagrees with columns in " +
                                   path);
  }
  ckpt.meta.norm_lo.resize(d);
  ckpt.meta.norm_hi.resize(d);
  for (size_t j = 0; j < d; ++j) in >> ckpt.meta.norm_lo[j];
  for (size_t j = 0; j < d; ++j) in >> ckpt.meta.norm_hi[j];
  if (!in) return Status::IoError("truncated normalizer stats in " + path);
  SCIS_RETURN_NOT_OK(ExpectKeyword(in, "params", path));
  size_t count = 0;
  in >> count;
  if (!in) return Status::IoError("truncated params header in " + path);
  SCIS_RETURN_NOT_OK(ReadParamBlock(in, count, path, &ckpt.params));
  return ckpt;
}

Status LoadParams(ParamStore& store, const std::string& path) {
  SCIS_ASSIGN_OR_RETURN(Checkpoint ckpt, LoadCheckpoint(path));
  if (ckpt.params.size() != store.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: file has " +
        std::to_string(ckpt.params.size()) + ", store has " +
        std::to_string(store.size()));
  }
  for (size_t id = 0; id < ckpt.params.size(); ++id) {
    const NamedParam& p = ckpt.params[id];
    if (p.name != store.name(id)) {
      return Status::InvalidArgument("parameter name mismatch at index " +
                                     std::to_string(id) + ": file '" + p.name +
                                     "' vs store '" + store.name(id) + "'");
    }
    Matrix& m = store.value(id);
    if (p.value.rows() != m.rows() || p.value.cols() != m.cols()) {
      return Status::InvalidArgument("shape mismatch for " + p.name);
    }
    m = p.value;
  }
  return Status::OK();
}

}  // namespace scis
