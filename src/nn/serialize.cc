#include "nn/serialize.h"

#include <fstream>
#include <iomanip>

namespace scis {

Status SaveParams(const ParamStore& store, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "scis-params v1\n" << store.size() << "\n";
  out << std::setprecision(17);
  for (size_t id = 0; id < store.size(); ++id) {
    const Matrix& m = store.value(id);
    out << store.name(id) << " " << m.rows() << " " << m.cols() << "\n";
    for (size_t k = 0; k < m.size(); ++k) {
      if (k) out << ' ';
      out << m[k];
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status LoadParams(ParamStore& store, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string magic, version;
  in >> magic >> version;
  if (magic != "scis-params" || version != "v1") {
    return Status::InvalidArgument("not a scis-params v1 file: " + path);
  }
  size_t count = 0;
  in >> count;
  if (count != store.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: file has " + std::to_string(count) +
        ", store has " + std::to_string(store.size()));
  }
  for (size_t id = 0; id < count; ++id) {
    std::string name;
    size_t rows = 0, cols = 0;
    in >> name >> rows >> cols;
    if (!in) return Status::IoError("truncated header in " + path);
    if (name != store.name(id)) {
      return Status::InvalidArgument("parameter name mismatch at index " +
                                     std::to_string(id) + ": file '" + name +
                                     "' vs store '" + store.name(id) + "'");
    }
    Matrix& m = store.value(id);
    if (rows != m.rows() || cols != m.cols()) {
      return Status::InvalidArgument("shape mismatch for " + name);
    }
    for (size_t k = 0; k < m.size(); ++k) {
      in >> m[k];
    }
    if (!in) return Status::IoError("truncated values in " + path);
  }
  return Status::OK();
}

}  // namespace scis
