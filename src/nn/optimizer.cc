#include "nn/optimizer.h"

#include <cmath>

#include "kernels/elementwise.h"

namespace scis {

void Sgd::Step(ParamStore& store, const std::vector<const Matrix*>& grads) {
  SCIS_CHECK_EQ(grads.size(), store.size());
  if (momentum_ > 0.0 && velocity_.empty()) {
    velocity_.reserve(grads.size());
    for (size_t i = 0; i < grads.size(); ++i) {
      const Matrix& p = store.value(i);
      velocity_.emplace_back(p.rows(), p.cols());
    }
  }
  for (size_t i = 0; i < grads.size(); ++i) {
    Matrix& p = store.value(i);
    const Matrix* g = grads[i];
    if (momentum_ > 0.0) {
      Matrix& vel = velocity_[i];
      if (g != nullptr) {
        kernels::SgdMomentumUpdate(p.data(), vel.data(), g->data(), p.size(),
                                   momentum_, lr_);
      } else {
        kernels::SgdMomentumUpdateZeroGrad(p.data(), vel.data(), p.size(),
                                           momentum_, lr_);
      }
    } else if (g != nullptr) {
      // Null grad skipped: p += -lr·0 is a bitwise no-op.
      kernels::Axpy(-lr_, g->data(), p.data(), p.size());
    }
  }
}

void Adam::Step(ParamStore& store, const std::vector<const Matrix*>& grads) {
  SCIS_CHECK_EQ(grads.size(), store.size());
  if (m_.empty()) {
    m_.reserve(grads.size());
    v_.reserve(grads.size());
    for (size_t i = 0; i < grads.size(); ++i) {
      const Matrix& p = store.value(i);
      m_.emplace_back(p.rows(), p.cols());
      v_.emplace_back(p.rows(), p.cols());
    }
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < grads.size(); ++i) {
    Matrix& p = store.value(i);
    const Matrix* g = grads[i];
    if (g != nullptr) {
      kernels::AdamUpdate(p.data(), m_[i].data(), v_[i].data(), g->data(),
                          p.size(), beta1_, beta2_, bc1, bc2, lr_, eps_);
    } else {
      // Moments still decay on a zero gradient (matches feeding zeros).
      kernels::AdamUpdateZeroGrad(p.data(), m_[i].data(), v_[i].data(),
                                  p.size(), beta1_, beta2_, bc1, bc2, lr_,
                                  eps_);
    }
  }
}

}  // namespace scis
