#include "nn/optimizer.h"

#include <cmath>

namespace scis {

void Sgd::Step(ParamStore& store, const std::vector<Matrix>& grads) {
  SCIS_CHECK_EQ(grads.size(), store.size());
  if (momentum_ > 0.0 && velocity_.empty()) {
    velocity_.reserve(grads.size());
    for (const Matrix& g : grads) velocity_.emplace_back(g.rows(), g.cols());
  }
  for (size_t i = 0; i < grads.size(); ++i) {
    Matrix& p = store.value(i);
    if (momentum_ > 0.0) {
      Matrix& vel = velocity_[i];
      MulScalarInPlace(vel, momentum_);
      AxpyInPlace(vel, 1.0, grads[i]);
      AxpyInPlace(p, -lr_, vel);
    } else {
      AxpyInPlace(p, -lr_, grads[i]);
    }
  }
}

void Adam::Step(ParamStore& store, const std::vector<Matrix>& grads) {
  SCIS_CHECK_EQ(grads.size(), store.size());
  if (m_.empty()) {
    m_.reserve(grads.size());
    v_.reserve(grads.size());
    for (const Matrix& g : grads) {
      m_.emplace_back(g.rows(), g.cols());
      v_.emplace_back(g.rows(), g.cols());
    }
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < grads.size(); ++i) {
    Matrix& p = store.value(i);
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    const double* g = grads[i].data();
    double* pm = m.data();
    double* pv = v.data();
    double* pp = p.data();
    for (size_t k = 0; k < p.size(); ++k) {
      pm[k] = beta1_ * pm[k] + (1.0 - beta1_) * g[k];
      pv[k] = beta2_ * pv[k] + (1.0 - beta2_) * g[k] * g[k];
      const double mhat = pm[k] / bc1;
      const double vhat = pv[k] / bc2;
      pp[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace scis
