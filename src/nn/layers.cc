#include "nn/layers.h"

namespace scis {

Var Apply(Activation act, Var x) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kSigmoid:
      return Sigmoid(x);
    case Activation::kRelu:
      return Relu(x);
    case Activation::kTanh:
      return Tanh(x);
    case Activation::kSoftplus:
      return Softplus(x);
  }
  return x;
}

Linear::Linear(ParamStore* store, const std::string& name, size_t in,
               size_t out, Activation act, Rng& rng, InitKind init)
    : store_(store), in_(in), out_(out), act_(act) {
  w_ = store->Add(name + ".W", InitWeight(init, in, out, rng));
  b_ = store->Add(name + ".b", Matrix::Zeros(1, out));
}

Var Linear::Forward(Tape& tape, Var x) const {
  SCIS_CHECK_EQ(x.cols(), in_);
  Var w = store_->Bind(tape, w_);
  Var b = store_->Bind(tape, b_);
  return FusedLinear(x, w, b, act_);
}

Var Dropout(Var x, double rate, bool train, Rng& rng) {
  if (!train || rate <= 0.0) return x;
  SCIS_CHECK_LT(rate, 1.0);
  const double keep = 1.0 - rate;
  Matrix mask = rng.BernoulliMatrix(x.rows(), x.cols(), keep);
  MulScalarInPlace(mask, 1.0 / keep);
  Var m = x.tape()->Constant(std::move(mask));
  return Mul(x, m);
}

Mlp::Mlp(ParamStore* store, const std::string& name,
         const std::vector<size_t>& dims, Activation hidden_act,
         Activation out_act, Rng& rng) {
  SCIS_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool last = (i + 2 == dims.size());
    const Activation act = last ? out_act : hidden_act;
    const InitKind init = (hidden_act == Activation::kRelu && !last)
                              ? InitKind::kHeNormal
                              : InitKind::kXavierUniform;
    layers_.emplace_back(store, name + ".l" + std::to_string(i), dims[i],
                         dims[i + 1], act, rng, init);
  }
}

Var Mlp::Forward(Tape& tape, Var x) const {
  Var h = x;
  for (const Linear& l : layers_) h = l.Forward(tape, h);
  return h;
}

Var Mlp::ForwardDropout(Tape& tape, Var x, double rate, bool train,
                        Rng& rng) const {
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(tape, h);
    if (i + 1 < layers_.size()) h = Dropout(h, rate, train, rng);
  }
  return h;
}

}  // namespace scis
