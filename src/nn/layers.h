// Neural-network building blocks over the autodiff tape: Linear, Dropout,
// and the multi-layer perceptron used by every deep imputer in the paper
// (GAIN/GINN generators & discriminators, AE encoders/decoders, DataWig).
#ifndef SCIS_NN_LAYERS_H_
#define SCIS_NN_LAYERS_H_

#include <string>
#include <vector>

#include "autodiff/tape.h"
#include "nn/init.h"
#include "nn/param_store.h"

namespace scis {

// Activation is defined in autodiff/tape.h (shared with the fused linear
// tape op).

// Applies `act` to `x` on x's tape.
Var Apply(Activation act, Var x);

// Fully-connected layer y = act(x W + b). Parameters are registered in the
// given ParamStore; Forward binds them on the caller's tape.
class Linear {
 public:
  Linear(ParamStore* store, const std::string& name, size_t in, size_t out,
         Activation act, Rng& rng,
         InitKind init = InitKind::kXavierUniform);

  Var Forward(Tape& tape, Var x) const;

  size_t in_dim() const { return in_; }
  size_t out_dim() const { return out_; }

 private:
  ParamStore* store_;
  size_t in_, out_;
  Activation act_;
  ParamStore::ParamId w_, b_;
};

// Inverted dropout: active only when `train` is true; scales kept units by
// 1/(1-rate) so inference needs no rescaling. The paper trains all deep
// baselines with dropout rate 0.5.
Var Dropout(Var x, double rate, bool train, Rng& rng);

// Stack of Linear layers: hidden layers use `hidden_act`, the final layer
// `out_act`.
class Mlp {
 public:
  // dims = {in, h1, ..., out}; needs at least {in, out}.
  Mlp(ParamStore* store, const std::string& name,
      const std::vector<size_t>& dims, Activation hidden_act,
      Activation out_act, Rng& rng);

  Var Forward(Tape& tape, Var x) const;
  // Forward with dropout `rate` after each hidden activation when training.
  Var ForwardDropout(Tape& tape, Var x, double rate, bool train,
                     Rng& rng) const;

  size_t in_dim() const { return layers_.front().in_dim(); }
  size_t out_dim() const { return layers_.back().out_dim(); }
  size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<Linear> layers_;
};

}  // namespace scis

#endif  // SCIS_NN_LAYERS_H_
