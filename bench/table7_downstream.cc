// Table VII: post-imputation prediction. Impute with GAIN / SCIS-GAIN,
// then train a 3-layer predictor on the completed data (§VI-D protocol:
// 30 epochs, lr 0.005, dropout 0.5, batch 128). AUC for the classification
// datasets (Trial, Surveil), MAE for the regression ones (Emergency,
// Response, Search, Weather).
#include "bench/bench_common.h"
#include "eval/downstream.h"

using namespace scis;
using namespace scis::bench;

namespace {

struct Row {
  std::string metric, dataset, gain, scis;
};

Row RunDataset(const SyntheticSpec& spec, int epochs) {
  PreparedData prep = PrepareData(spec, 0.2, 0.0, 99);
  DownstreamOptions ds;  // paper protocol defaults

  auto evaluate = [&](const Matrix& imputed) {
    return EvaluateDownstream(imputed, prep.labels, prep.task, ds);
  };

  Matrix gain_imputed, scis_imputed;
  {
    auto imp = MakeImputer("GAIN", epochs, 99);
    (void)(*imp)->Fit(prep.train);
    gain_imputed = (*imp)->Impute(prep.train);
  }
  {
    auto gen = MakeGenerative("GAIN", 99);
    Scis scis(PaperScisOptions(spec, epochs));
    Result<Matrix> imputed = scis.Run(*gen, prep.train);
    scis_imputed = imputed.ok() ? std::move(imputed).value()
                                : gain_imputed;  // degraded fallback
  }
  DownstreamResult rg = evaluate(gain_imputed);
  DownstreamResult rs = evaluate(scis_imputed);
  Row row;
  row.dataset = spec.name;
  if (prep.task == TaskKind::kClassification) {
    row.metric = "AUC";
    row.gain = StrFormat("%.3f", rg.auc);
    row.scis = StrFormat("%.3f", rs.auc);
  } else {
    row.metric = "MAE";
    row.gain = StrFormat("%.3f", rg.mae);
    row.scis = StrFormat("%.3f", rs.mae);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  long long epochs = 15;
  long long threads;
  FlagParser flags;
  ObsSession obs("table7_downstream");
  AddThreadsFlag(flags, &threads);
  obs.AddFlags(flags);
  flags.AddDouble("scale", &scale,
                  "multiplier on the CPU-sized default rows");
  flags.AddInt("epochs", &epochs, "imputer training epochs");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  ApplyThreadsFlag(threads);
  obs.Start();
  obs.report().AddConfig("scale", scale);
  obs.report().AddConfig("epochs", static_cast<int64_t>(epochs));
  obs.report().AddConfig("threads",
                         static_cast<int64_t>(runtime::NumThreads()));

  std::printf("=== Table VII — post-imputation prediction ===\n");
  TablePrinter table({"Metric", "Dataset", "GAIN", "SCIS-GAIN"});
  // Classification first (paper row order), then regression.
  std::vector<SyntheticSpec> specs = {
      TrialSpec(0.5 * scale),      SurveilSpec(0.0025 * scale),
      EmergencySpec(0.5 * scale),  ResponseSpec(0.05 * scale),
      SearchSpec(0.02 * scale),    WeatherSpec(0.008 * scale)};
  for (const SyntheticSpec& spec : specs) {
    Row row = RunDataset(spec, static_cast<int>(epochs));
    table.AddRow({row.metric, row.dataset, row.gain, row.scis});
  }
  table.Print();
  return obs.Finish();
}
