// train_throughput — training-step fast path vs the pre-fast-path step.
//
//   train_throughput [--quick] [--steps 0] [--bench-json bench/BENCH_train.json]
//                    [--trace-out t.json] [--report-out r.json]
//
// Two arms train the same MLP on the same batch with the same Adam state:
//
//   baseline  — a faithful replica of the training step before the fast
//               path (see the git history of src/autodiff/tape.cc,
//               param_store.cc, optimizer.cc): parameters copied onto the
//               tape as leaves, constants copied, the unfused
//               MatMul/AddRowBroadcast/activation op sequence with every
//               intermediate a fresh zero-initialized Matrix, activation
//               outputs duplicated for the backward closure, every gradient
//               contribution materialized and then copy-assigned into its
//               accumulator, gradients copied out for the optimizer, and
//               the scalar (unvectorized) Adam inner loop.
//   fastpath  — the current trainer shape: one persistent Tape recycled with
//               Clear() (pooled buffers), FusedLinear layers via Mlp,
//               ConstantRef/LeafRef zero-copy inputs, CollectGradsInto
//               gradient views, and the kernel optimizer inner loops.
//
// Both timed arms are anchored to a single thread so the speedup measures
// the fast path itself, not core count. The arms run in interleaved rounds
// and the reported speedup is the ratio of median step times, so scheduler
// noise on a shared box biases neither arm. The two arms are bit-identical by
// construction (the FusedLinear test suite proves each piece), so the bench
// asserts final weights match across arms and that the fastpath arm is
// bit-identical at 1/2/4 threads, and reports steady-state pool misses
// (must be 0). Config shapes follow the paper's GAIN nets (§VI: 2-layer,
// width d) at Table-II-like column counts.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/old_tape.h"
#include "kernels/elementwise.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

using namespace scis;

namespace {

struct TrainConfig {
  std::string name;
  std::vector<size_t> dims;  // {in, hidden..., out}
  size_t batch = 0;
  bool bce = false;  // GAIN-style weighted BCE vs weighted MSE reconstruction
};

struct BatchData {
  Matrix x, y, w;
};

BatchData MakeBatch(const TrainConfig& cfg, Rng& rng) {
  BatchData d;
  d.x = rng.UniformMatrix(cfg.batch, cfg.dims.front(), 0.0, 1.0);
  if (cfg.bce) {
    d.y = rng.BernoulliMatrix(cfg.batch, cfg.dims.back(), 0.5);
    d.w = Matrix::Ones(cfg.batch, cfg.dims.back());
  } else {
    d.y = rng.UniformMatrix(cfg.batch, cfg.dims.back(), 0.0, 1.0);
    d.w = rng.BernoulliMatrix(cfg.batch, cfg.dims.back(), 0.8);
  }
  return d;
}

struct ArmOut {
  std::vector<double> step_ms;   // timed steps only
  std::vector<double> weights;   // final parameters, ToFlat order
  uint64_t pool_miss_delta = 0;  // pool misses during the timed steps
};

// The pre-fast-path Adam::Step, byte-for-byte from the git history of
// src/nn/optimizer.cc: the serial scalar inner loop (the kernel optimizer
// computes the same element-independent math, so the arms stay bitwise
// comparable).
class OldAdam {
 public:
  explicit OldAdam(double lr) : lr_(lr) {}

  void Step(ParamStore& store, const std::vector<Matrix>& grads) {
    if (m_.empty()) {
      m_.reserve(grads.size());
      v_.reserve(grads.size());
      for (const Matrix& g : grads) {
        m_.emplace_back(g.rows(), g.cols());
        v_.emplace_back(g.rows(), g.cols());
      }
    }
    ++t_;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (size_t i = 0; i < grads.size(); ++i) {
      Matrix& p = store.value(i);
      Matrix& m = m_[i];
      Matrix& v = v_[i];
      const double* g = grads[i].data();
      double* pm = m.data();
      double* pv = v.data();
      double* pp = p.data();
      for (size_t k = 0; k < p.size(); ++k) {
        pm[k] = beta1_ * pm[k] + (1.0 - beta1_) * g[k];
        pv[k] = beta2_ * pv[k] + (1.0 - beta2_) * g[k] * g[k];
        const double mhat = pm[k] / bc1;
        const double vhat = pv[k] / bc2;
        pp[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
      }
    }
  }

 private:
  double lr_;
  double beta1_ = 0.9, beta2_ = 0.999, eps_ = 1e-8;
  uint64_t t_ = 0;
  std::vector<Matrix> m_, v_;
};

ArmOut RunBaseline(const TrainConfig& cfg, int warmup, int steps,
                   uint64_t seed) {
  Rng rng(seed);
  ParamStore store;
  Mlp mlp(&store, "net", cfg.dims, Activation::kRelu, Activation::kSigmoid,
          rng);
  (void)mlp;  // the baseline drives the old engine over store's params
  OldAdam adam(1e-3);
  const BatchData d = MakeBatch(cfg, rng);
  const size_t layers = cfg.dims.size() - 1;

  ArmOut out;
  out.step_ms.reserve(static_cast<size_t>(steps));
  for (int s = 0; s < warmup + steps; ++s) {
    Stopwatch watch;
    // The pre-fast-path trainer step: a fresh tape, parameters copied on as
    // leaves (the old ParamStore::Bind), constants copied on, the unfused
    // per-layer op sequence, and gradients copied out (the old
    // CollectGrads) for the scalar optimizer.
    oldtape::Tape tape;
    std::vector<oldtape::Var> params;
    params.reserve(2 * layers);
    oldtape::Var h = tape.Constant(d.x);
    for (size_t l = 0; l < layers; ++l) {
      oldtape::Var w = tape.Leaf(store.value(2 * l));
      oldtape::Var b = tape.Leaf(store.value(2 * l + 1));
      params.push_back(w);
      params.push_back(b);
      oldtape::Var z = oldtape::AddRowBroadcast(oldtape::MatMul(h, w), b);
      h = l + 1 < layers ? oldtape::Relu(z) : oldtape::Sigmoid(z);
    }
    oldtape::Var loss =
        cfg.bce ? oldtape::WeightedBceLoss(h, tape.Constant(d.y),
                                           tape.Constant(d.w))
                : oldtape::WeightedMseLoss(h, tape.Constant(d.y),
                                           tape.Constant(d.w));
    tape.Backward(loss);
    std::vector<Matrix> grads;
    grads.reserve(params.size());
    for (const oldtape::Var& p : params) grads.push_back(p.grad());
    adam.Step(store, grads);
    if (s >= warmup) out.step_ms.push_back(watch.ElapsedMillis());
  }
  out.weights = store.ToFlat();
  return out;
}

ArmOut RunFastpath(const TrainConfig& cfg, int warmup, int steps,
                   uint64_t seed) {
  Rng rng(seed);
  ParamStore store;
  Mlp mlp(&store, "net", cfg.dims, Activation::kRelu, Activation::kSigmoid,
          rng);
  Adam adam(1e-3);
  const BatchData d = MakeBatch(cfg, rng);

  Tape tape;
  std::vector<const Matrix*> views;
  ArmOut out;
  out.step_ms.reserve(static_cast<size_t>(steps));
  uint64_t misses_at_warmup = 0;
  for (int s = 0; s < warmup + steps; ++s) {
    if (s == warmup) misses_at_warmup = tape.pool_stats().misses;
    Stopwatch watch;
    Var pred = mlp.Forward(tape, tape.ConstantRef(&d.x));
    Var loss = cfg.bce ? WeightedBceLoss(pred, tape.ConstantRef(&d.y),
                                         tape.ConstantRef(&d.w))
                       : WeightedMseLoss(pred, tape.ConstantRef(&d.y),
                                         tape.ConstantRef(&d.w));
    tape.Backward(loss);
    store.CollectGradsInto(&views);
    adam.Step(store, views);
    tape.Clear();
    if (s >= warmup) out.step_ms.push_back(watch.ElapsedMillis());
  }
  out.pool_miss_delta = tape.pool_stats().misses - misses_at_warmup;
  out.weights = store.ToFlat();
  return out;
}

double P50(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double StepsPerSec(const std::vector<double>& ms) {
  double total = 0.0;
  for (double m : ms) total += m;
  return total > 0.0 ? 1000.0 * static_cast<double>(ms.size()) / total : 0.0;
}

bool SameBits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

struct ConfigResult {
  const TrainConfig* cfg = nullptr;
  double base_sps = 0.0, fast_sps = 0.0;
  double base_p50 = 0.0, fast_p50 = 0.0;
  double speedup = 0.0;
  uint64_t pool_misses = 0;
  bool weights_match = false;
  bool bit_identical = false;
};

int WriteBenchJson(const std::string& path,
                   const std::vector<ConfigResult>& results, bool quick,
                   int warmup, int steps, int rounds) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::printf("bench-json: cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"schema\": \"scis-bench-train-v1\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(out, "  \"warmup_steps\": %d,\n", warmup);
  std::fprintf(out, "  \"timed_steps\": %d,\n", steps);
  std::fprintf(out, "  \"rounds\": %d,\n", rounds);
  std::fprintf(out, "  \"configs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::string dims = "[";
    for (size_t k = 0; k < r.cfg->dims.size(); ++k) {
      dims += (k ? ", " : "") + std::to_string(r.cfg->dims[k]);
    }
    dims += "]";
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"layers\": %s, \"batch\": %zu, "
        "\"loss\": \"%s\",\n"
        "     \"baseline_steps_per_sec\": %.1f, "
        "\"fastpath_steps_per_sec\": %.1f,\n"
        "     \"baseline_step_ms_p50\": %.4f, "
        "\"fastpath_step_ms_p50\": %.4f,\n"
        "     \"speedup_single_thread\": %.2f, "
        "\"pool_misses_after_warmup\": %llu,\n"
        "     \"weights_match_baseline\": %s, "
        "\"bit_identical_1_2_4_threads\": %s}%s\n",
        r.cfg->name.c_str(), dims.c_str(), r.cfg->batch,
        r.cfg->bce ? "weighted_bce" : "weighted_mse", r.base_sps, r.fast_sps,
        r.base_p50, r.fast_p50, r.speedup,
        static_cast<unsigned long long>(r.pool_misses),
        r.weights_match ? "true" : "false",
        r.bit_identical ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("bench json written to %s (%zu configs, mode=%s)\n",
              path.c_str(), results.size(), quick ? "quick" : "full");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  long long steps_flag = 0;
  std::string bench_json;
  FlagParser flags;
  flags.AddBool("quick", &quick, "short run for CI smoke");
  flags.AddInt("steps", &steps_flag, "timed steps per arm (0 = mode default)");
  flags.AddString("bench-json", &bench_json,
                  "write the machine-readable results to this path");
  bench::ObsSession obs("train_throughput");
  obs.AddFlags(flags);
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  obs.Start();

  const int warmup = quick ? 5 : 50;
  const int steps =
      steps_flag > 0 ? static_cast<int>(steps_flag) : (quick ? 30 : 500);
  const int rounds = quick ? 1 : 3;
  obs.report().AddConfig("warmup", static_cast<int64_t>(warmup));
  obs.report().AddConfig("steps", static_cast<int64_t>(steps));
  obs.report().AddConfig("rounds", static_cast<int64_t>(rounds));

  // GAIN-shaped nets (§VI: 2-layer, width d, input 2d) at Table-II-like
  // widths and DIM-trainer batch sizes.
  const std::vector<TrainConfig> configs = {
      {"d9_b128", {18, 9, 9}, 128, false},
      {"d9_b256", {18, 9, 9}, 256, false},
      {"d16_b128", {32, 16, 16}, 128, false},
      {"d25_b256", {50, 25, 25}, 256, false},
      {"d57_b256", {114, 57, 57}, 256, false},
      {"d9_b512_bce", {18, 9, 9}, 512, true},
  };

  std::vector<ConfigResult> results;
  std::printf("%16s %10s %10s %10s %10s %8s %7s %6s %6s\n", "config",
              "base_sps", "fast_sps", "base_p50", "fast_p50", "speedup",
              "misses", "match", "ident");
  for (const TrainConfig& cfg : configs) {
    const uint64_t seed = 20260808;
    runtime::SetNumThreads(1);  // timed arms: single-thread anchored
    // Interleaved rounds: alternating the arms spreads machine noise
    // (scheduler interference, frequency drift) evenly over both, and the
    // p50 over the pooled samples is robust to spikes within a round.
    ArmOut base, fast;
    uint64_t pool_misses = 0;
    bool weights_match = true;
    for (int round = 0; round < rounds; ++round) {
      ArmOut b = RunBaseline(cfg, warmup, steps, seed);
      ArmOut f = RunFastpath(cfg, warmup, steps, seed);
      weights_match = weights_match && SameBits(b.weights, f.weights);
      pool_misses += f.pool_miss_delta;
      if (round == 0) {
        base = std::move(b);
        fast = std::move(f);
      } else {
        // Identical seeds give identical training; only timings differ.
        weights_match = weights_match && SameBits(base.weights, b.weights);
        base.step_ms.insert(base.step_ms.end(), b.step_ms.begin(),
                            b.step_ms.end());
        fast.step_ms.insert(fast.step_ms.end(), f.step_ms.begin(),
                            f.step_ms.end());
      }
    }

    ConfigResult r;
    r.cfg = &cfg;
    r.base_sps = StepsPerSec(base.step_ms);
    r.fast_sps = StepsPerSec(fast.step_ms);
    r.base_p50 = P50(base.step_ms);
    r.fast_p50 = P50(fast.step_ms);
    // Throughput ratio of the median step: a single interference spike in
    // either arm cannot move it the way a mean-based ratio moves.
    r.speedup = r.fast_p50 > 0.0 ? r.base_p50 / r.fast_p50 : 0.0;
    r.pool_misses = pool_misses;
    r.weights_match = weights_match;

    // Determinism arm (untimed): the fast path must land on the same bits
    // at any thread count.
    r.bit_identical = true;
    for (const int threads : {2, 4}) {
      runtime::SetNumThreads(threads);
      const ArmOut again = RunFastpath(cfg, warmup, steps, seed);
      r.bit_identical = r.bit_identical && SameBits(fast.weights, again.weights);
    }
    runtime::SetNumThreads(0);

    std::printf("%16s %10.1f %10.1f %9.3fms %9.3fms %7.2fx %7llu %6s %6s\n",
                cfg.name.c_str(), r.base_sps, r.fast_sps, r.base_p50,
                r.fast_p50, r.speedup,
                static_cast<unsigned long long>(r.pool_misses),
                r.weights_match ? "yes" : "NO",
                r.bit_identical ? "yes" : "NO");
    results.push_back(r);
  }

  int rc = 0;
  if (!bench_json.empty()) {
    rc = WriteBenchJson(bench_json, results, quick, warmup, steps, rounds);
  }
  return obs.Finish() || rc;
}
