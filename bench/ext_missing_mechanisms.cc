// Extension experiment (§VII future work): the paper notes SCIS assumes
// MCAR and leaves complex missingness open. This bench measures how GAIN
// and SCIS-GAIN degrade when the injected mechanism is MAR (missingness
// driven by another column) or MNAR (self-masking of large values),
// holding the overall missing rate fixed.
#include "bench/bench_common.h"
#include "data/missingness.h"

using namespace scis;
using namespace scis::bench;

namespace {

// PrepareData variant with a pluggable mechanism for the extra drop.
PreparedData PrepareWithMechanism(const SyntheticSpec& spec,
                                  const std::string& mechanism, double rate,
                                  uint64_t seed) {
  SyntheticSpec s = spec;
  s.seed = spec.seed ^ (seed * 0x9E3779B97F4A7C15ULL);
  LabeledDataset gen = GenerateSynthetic(s);
  Rng rng(seed + 1);
  Dataset incomplete = gen.incomplete;
  if (mechanism == "MAR") {
    incomplete = InjectMar(incomplete, rate, 4.0, rng);
  } else if (mechanism == "MNAR") {
    incomplete = InjectMnar(incomplete, rate, 8.0, rng);
  } else {
    incomplete = InjectMcar(incomplete, rate, rng);
  }
  HoldOut holdout = MakeHoldOut(incomplete, 0.2, rng);
  MinMaxNormalizer norm;
  PreparedData out;
  out.spec = s;
  out.train = norm.FitTransform(holdout.train);
  out.eval_mask = holdout.eval_mask;
  out.truth = Matrix(holdout.truth.rows(), holdout.truth.cols());
  for (size_t i = 0; i < out.truth.rows(); ++i)
    for (size_t j = 0; j < out.truth.cols(); ++j)
      if (holdout.eval_mask(i, j) == 1.0)
        out.truth(i, j) = (holdout.truth(i, j) - norm.lo()[j]) /
                          (norm.hi()[j] - norm.lo()[j]);
  out.labels = gen.labels;
  out.task = s.task;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.5;
  long long epochs = 20;
  double rate = 0.3;
  long long threads;
  FlagParser flags;
  ObsSession obs("ext_missing_mechanisms");
  AddThreadsFlag(flags, &threads);
  obs.AddFlags(flags);
  flags.AddDouble("scale", &scale, "row-count multiplier vs the paper");
  flags.AddInt("epochs", &epochs, "deep-model training epochs");
  flags.AddDouble("rate", &rate, "extra missingness rate injected");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  ApplyThreadsFlag(threads);
  obs.Start();
  obs.report().AddConfig("scale", scale);
  obs.report().AddConfig("epochs", static_cast<int64_t>(epochs));
  obs.report().AddConfig("rate", rate);
  obs.report().AddConfig("threads",
                         static_cast<int64_t>(runtime::NumThreads()));

  SyntheticSpec spec = TrialSpec(scale);
  std::printf("=== Extension — missing mechanisms (%s, extra rate %.0f%%) "
              "===\n",
              spec.name.c_str(), rate * 100);
  TablePrinter table({"Mechanism", "GAIN RMSE", "SCIS RMSE", "SCIS R_t (%)"});
  for (const std::string mech : {"MCAR", "MAR", "MNAR"}) {
    PreparedData prep = PrepareWithMechanism(spec, mech, rate, 7);
    double gain_rmse;
    {
      auto imp = MakeImputer("GAIN", static_cast<int>(epochs), 7);
      gain_rmse = RunPlain(**imp, prep).rmse;
    }
    auto gen = MakeGenerative("GAIN", 7);
    MethodResult r =
        RunScis(*gen, PaperScisOptions(spec, static_cast<int>(epochs)), prep);
    table.AddRow({mech, StrFormat("%.4f", gain_rmse),
                  StrFormat("%.4f", r.rmse),
                  StrFormat("%.2f", r.sample_rate)});
  }
  table.Print();
  std::printf(
      "MCAR is the paper's operating assumption; MAR/MNAR quantify the\n"
      "§VII open problem (imputation error grows as the mechanism departs\n"
      "from MCAR, and the Theorem-1 guarantee is no longer exact).\n");
  return obs.Finish();
}
