// Figure 3: effect of the user-tolerated error bound ε on SCIS-GAIN.
// Reports, per ε: SCIS RMSE, the user-tolerated error R^u_mse + ε (where
// R^u_mse is full-data DIM-GAIN), the original-model error R^o_mse + ε
// (full-data GAIN), the initial sample rate R1 = n0/N and the minimum
// sample rate R2 = n*/N. The paper's reading: SCIS RMSE stays below both
// budgets, R2 shrinks as ε grows, and past a knee n* hits the n0 floor.
#include "bench/bench_common.h"

using namespace scis;
using namespace scis::bench;

int main(int argc, char** argv) {
  double scale = 0.5;
  long long epochs = 20;
  std::string dataset = "Trial";
  long long threads;
  FlagParser flags;
  ObsSession obs("fig3_epsilon");
  AddThreadsFlag(flags, &threads);
  obs.AddFlags(flags);
  flags.AddDouble("scale", &scale, "row-count multiplier vs the paper");
  flags.AddInt("epochs", &epochs, "deep-model training epochs");
  flags.AddString("dataset", &dataset, "which Table-II dataset shape");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  ApplyThreadsFlag(threads);
  obs.Start();
  obs.report().AddConfig("scale", scale);
  obs.report().AddConfig("epochs", static_cast<int64_t>(epochs));
  obs.report().AddConfig("dataset", dataset);
  obs.report().AddConfig("threads",
                         static_cast<int64_t>(runtime::NumThreads()));

  SyntheticSpec spec;
  for (const SyntheticSpec& s : AllCovidSpecs(scale)) {
    if (s.name == dataset) spec = s;
  }
  if (spec.name.empty()) {
    std::printf("unknown dataset %s\n", dataset.c_str());
    return 1;
  }

  PreparedData prep = PrepareData(spec, 0.2, 0.0, 77);
  const size_t n = prep.train.num_rows();
  std::printf("=== Figure 3 — %s: sweep error bound ε ===\n",
              spec.name.c_str());

  // Reference errors on the full dataset.
  double r_u = 0.0, r_o = 0.0;
  {
    auto gen = MakeGenerative("GAIN", 77);
    DimOptions dopts = PaperScisOptions(spec, static_cast<int>(epochs)).dim;
    MethodResult r = RunDim(*gen, dopts, prep);
    r_u = r.rmse;
  }
  {
    auto imp = MakeImputer("GAIN", static_cast<int>(epochs), 77);
    MethodResult r = RunPlain(**imp, prep);
    r_o = r.rmse;
  }
  std::printf("full-data references: R^u_mse (DIM-GAIN) = %.4f, "
              "R^o_mse (GAIN) = %.4f\n",
              r_u, r_o);

  TablePrinter table({"eps", "SCIS RMSE", "R^u+eps", "R^o+eps", "R1 (%)",
                      "R2 (%)", "Time (s)"});
  for (double eps : {0.001, 0.003, 0.005, 0.007, 0.009}) {
    ScisOptions opts = PaperScisOptions(spec, static_cast<int>(epochs));
    opts.sse.epsilon = eps;
    auto gen = MakeGenerative("GAIN", 77);
    MethodResult r = RunScis(*gen, opts, prep);
    table.AddRow({StrFormat("%.3f", eps), StrFormat("%.4f", r.rmse),
                  StrFormat("%.4f", r_u + eps), StrFormat("%.4f", r_o + eps),
                  StrFormat("%.2f",
                            100.0 * static_cast<double>(opts.initial_size) /
                                static_cast<double>(n)),
                  StrFormat("%.2f", r.sample_rate),
                  FormatSeconds(r.seconds)});
  }
  table.Print();
  return obs.Finish();
}
