// Figure 2: effect of the missing rate R_m (fraction of observed values
// additionally dropped) on GAIN vs SCIS-GAIN — RMSE, training time,
// training sample rate R_t, and the SSE module's share of SCIS time.
#include "bench/bench_common.h"

using namespace scis;
using namespace scis::bench;

int main(int argc, char** argv) {
  double scale = 0.5;
  long long epochs = 20;
  long long repeats = 1;
  std::string dataset = "Trial";
  long long threads;
  FlagParser flags;
  ObsSession obs("fig2_missing_rate");
  AddThreadsFlag(flags, &threads);
  obs.AddFlags(flags);
  flags.AddDouble("scale", &scale, "row-count multiplier vs the paper");
  flags.AddInt("epochs", &epochs, "deep-model training epochs");
  flags.AddInt("repeats", &repeats, "random divisions averaged");
  flags.AddString("dataset", &dataset, "which Table-II dataset shape");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  ApplyThreadsFlag(threads);
  obs.Start();
  obs.report().AddConfig("scale", scale);
  obs.report().AddConfig("epochs", static_cast<int64_t>(epochs));
  obs.report().AddConfig("repeats", static_cast<int64_t>(repeats));
  obs.report().AddConfig("dataset", dataset);
  obs.report().AddConfig("threads",
                         static_cast<int64_t>(runtime::NumThreads()));

  SyntheticSpec spec;
  for (const SyntheticSpec& s : AllCovidSpecs(scale)) {
    if (s.name == dataset) spec = s;
  }
  if (spec.name.empty()) {
    std::printf("unknown dataset %s\n", dataset.c_str());
    return 1;
  }

  std::printf("=== Figure 2 — %s: sweep missing rate R_m ===\n",
              spec.name.c_str());
  TablePrinter table({"R_m (%)", "GAIN RMSE", "GAIN Time (s)",
                      "SCIS RMSE", "SCIS Time (s)", "SCIS R_t (%)",
                      "SSE Time (s)"});
  for (double rm : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    AggregateResult gain = Repeat(repeats, [&](uint64_t seed) {
      PreparedData prep = PrepareData(spec, 0.2, rm, seed);
      auto imp = MakeImputer("GAIN", static_cast<int>(epochs), seed);
      return RunPlain(**imp, prep);
    });
    AggregateResult sc = Repeat(repeats, [&](uint64_t seed) {
      PreparedData prep = PrepareData(spec, 0.2, rm, seed);
      auto gen = MakeGenerative("GAIN", seed);
      return RunScis(*gen, PaperScisOptions(spec, static_cast<int>(epochs)),
                     prep);
    });
    table.AddRow({StrFormat("%.0f", rm * 100),
                  FormatMeanStd(gain.rmse.mean, gain.rmse.stddev),
                  FormatSeconds(gain.seconds.mean),
                  FormatMeanStd(sc.rmse.mean, sc.rmse.stddev),
                  FormatSeconds(sc.seconds.mean),
                  StrFormat("%.2f", sc.sample_rate.mean),
                  FormatSeconds(sc.sse_seconds.mean)});
  }
  table.Print();
  return obs.Finish();
}
