// Ablation (DESIGN.md §5): DIM critic variants.
//   identity  — generator descends the Eq.-3 MS loss directly
//   learned   — §IV-B adversarial variant: a feature-map discriminator
//               ascends the embedded Sinkhorn divergence (OT-GAN style)
// plus the observed-reconstruction anchor on/off, and plain-vs-masking
// Sinkhorn (the RRSI-style unmasked divergence the paper argues against).
#include "bench/bench_common.h"

using namespace scis;
using namespace scis::bench;

int main(int argc, char** argv) {
  double scale = 0.25;
  long long epochs = 20;
  long long threads;
  FlagParser flags;
  ObsSession obs("abl_critic");
  AddThreadsFlag(flags, &threads);
  obs.AddFlags(flags);
  flags.AddDouble("scale", &scale, "row-count multiplier vs the paper");
  flags.AddInt("epochs", &epochs, "DIM training epochs");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  ApplyThreadsFlag(threads);
  obs.Start();
  obs.report().AddConfig("scale", scale);
  obs.report().AddConfig("epochs", static_cast<int64_t>(epochs));
  obs.report().AddConfig("threads",
                         static_cast<int64_t>(runtime::NumThreads()));

  SyntheticSpec spec = TrialSpec(scale);
  PreparedData prep = PrepareData(spec, 0.2, 0.0, 7);
  std::printf("=== Ablation — DIM critic variants (%s, %zu rows) ===\n",
              spec.name.c_str(), prep.train.num_rows());

  TablePrinter table({"Variant", "RMSE", "Time (s)"});
  struct Variant {
    std::string name;
    bool use_critic;
    double recon_weight;
  };
  for (const Variant& v :
       {Variant{"identity critic + anchor", false, 1.0},
        Variant{"identity critic, no anchor", false, 0.0},
        Variant{"learned critic + anchor", true, 1.0},
        Variant{"learned critic, no anchor", true, 0.0}}) {
    auto gen = MakeGenerative("GAIN", 7);
    DimOptions d = PaperScisOptions(spec, static_cast<int>(epochs)).dim;
    d.use_critic = v.use_critic;
    d.recon_weight = v.recon_weight;
    MethodResult r = RunDim(*gen, d, prep);
    table.AddRow({v.name, StrFormat("%.4f", r.rmse),
                  FormatSeconds(r.seconds)});
  }
  table.Print();
  std::printf(
      "The identity critic trains the pure Eq.-3 objective and is the\n"
      "library default; the learned critic pays two extra Sinkhorn solves\n"
      "per step for the adversarial game of §IV-B.\n");
  return obs.Finish();
}
