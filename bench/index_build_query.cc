// index_build_query — src/index ANN build + query bench against brute force.
//
//   index_build_query [--quick] [--missing 0.15] [--queries 2000]
//                     [--max_leaf_visits 48] [--bench-json bench/BENCH_index.json]
//                     [--trace-out t.json] [--report-out r.json]
//
// Sweeps n (quick: 2k/8k; full: 8k/30k/120k) over uniform [0,1]^6 data with
// MCAR missingness, and for each n reports: build time at 1/2/4 threads
// (asserting the trees are bit-identical), single-thread per-query p50/p99
// latency for the budgeted ANN search vs the exact brute-force scan,
// recall@10 of ANN against brute force, and the total single-thread query
// speedup. --bench-json writes the machine-readable sweep; the committed
// baseline is bench/BENCH_index.json (full mode, see EXPERIMENTS.md).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "index/ann_index.h"
#include "tensor/rng.h"

using namespace scis;

namespace {

struct SweepPoint {
  size_t n = 0;
  double build_sec[3] = {0, 0, 0};  // at 1 / 2 / 4 threads
  bool bit_identical = false;
  double brute_p50_us = 0, brute_p99_us = 0;
  double ann_p50_us = 0, ann_p99_us = 0;
  double speedup_total = 0;  // total brute time / total ann time, 1 thread
  double recall_at_10 = 0;
  size_t side_rows = 0, leaves = 0, depth = 0;
};

double Percentile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  const size_t at = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[at];
}

SweepPoint RunPoint(size_t n, size_t d, double missing, size_t num_queries,
                    size_t max_leaf_visits, uint64_t seed) {
  Rng rng(seed);
  Matrix values = rng.UniformMatrix(n, d, 0.0, 1.0);
  Matrix mask = rng.BernoulliMatrix(n, d, 1.0 - missing);
  for (size_t k = 0; k < values.size(); ++k) {
    if (mask[k] == 0.0) values[k] = 0.0;
  }

  SweepPoint pt;
  pt.n = n;
  const int thread_arms[3] = {1, 2, 4};
  index::AnnIndex idx;
  pt.bit_identical = true;
  for (int t = 0; t < 3; ++t) {
    runtime::SetNumThreads(thread_arms[t]);
    Stopwatch watch;
    index::AnnIndex built = index::AnnIndex::Build(values, mask, {});
    pt.build_sec[t] = watch.ElapsedSeconds();
    if (t == 0) {
      idx = std::move(built);
    } else {
      pt.bit_identical = pt.bit_identical && built == idx;
    }
  }
  pt.side_rows = idx.num_side_rows();
  pt.leaves = idx.num_leaves();
  pt.depth = idx.depth();

  // Single-thread query arms: every n-th row up to num_queries queries.
  runtime::SetNumThreads(1);
  index::SearchOptions sopts;
  sopts.k = 10;
  sopts.max_leaf_visits = max_leaf_visits;
  const size_t q_count = std::min(num_queries, n);
  const size_t stride = n / q_count;
  std::vector<double> brute_us, ann_us;
  brute_us.reserve(q_count);
  ann_us.reserve(q_count);
  double hits = 0.0, want = 0.0;
  double brute_total = 0.0, ann_total = 0.0;
  std::vector<std::vector<index::Neighbor>> ann_results(q_count);
  for (size_t q = 0; q < q_count; ++q) {
    const size_t i = q * stride;
    Stopwatch watch;
    const std::vector<index::Neighbor> exact = index::BruteForceSearch(
        values, mask, values.row_data(i), mask.row_data(i), sopts.k, i);
    brute_us.push_back(watch.ElapsedSeconds() * 1e6);
    brute_total += brute_us.back();
    watch.Restart();
    ann_results[q] =
        idx.Search(values.row_data(i), mask.row_data(i), sopts, i);
    ann_us.push_back(watch.ElapsedSeconds() * 1e6);
    ann_total += ann_us.back();
    for (const index::Neighbor& nb : exact) {
      want += 1.0;
      for (const index::Neighbor& got : ann_results[q]) {
        if (got.row == nb.row) {
          hits += 1.0;
          break;
        }
      }
    }
  }
  pt.brute_p50_us = Percentile(brute_us, 0.50);
  pt.brute_p99_us = Percentile(brute_us, 0.99);
  pt.ann_p50_us = Percentile(ann_us, 0.50);
  pt.ann_p99_us = Percentile(ann_us, 0.99);
  pt.speedup_total = ann_total > 0.0 ? brute_total / ann_total : 0.0;
  pt.recall_at_10 = want > 0.0 ? hits / want : 1.0;

  // Query bit-identity: re-run the same queries at 2 and 4 threads.
  for (int t = 1; t < 3; ++t) {
    runtime::SetNumThreads(thread_arms[t]);
    for (size_t q = 0; q < q_count; ++q) {
      const size_t i = q * stride;
      const std::vector<index::Neighbor> again =
          idx.Search(values.row_data(i), mask.row_data(i), sopts, i);
      pt.bit_identical = pt.bit_identical && again == ann_results[q];
    }
  }
  runtime::SetNumThreads(0);
  return pt;
}

int WriteBenchJson(const std::string& path, const std::vector<SweepPoint>& pts,
                   bool quick, double missing, size_t d,
                   size_t max_leaf_visits) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::printf("bench-json: cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"schema\": \"scis-bench-index-v1\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(out, "  \"dims\": %zu,\n", d);
  std::fprintf(out, "  \"missing_rate\": %.3f,\n", missing);
  std::fprintf(out, "  \"max_leaf_visits\": %zu,\n", max_leaf_visits);
  std::fprintf(out, "  \"sweep\": [\n");
  for (size_t i = 0; i < pts.size(); ++i) {
    const SweepPoint& p = pts[i];
    std::fprintf(out,
                 "    {\"n\": %zu, "
                 "\"build_seconds\": {\"1\": %.4f, \"2\": %.4f, \"4\": %.4f}, "
                 "\"bit_identical_1_2_4_threads\": %s, "
                 "\"leaves\": %zu, \"depth\": %zu, \"side_rows\": %zu, "
                 "\"brute_p50_us\": %.1f, \"brute_p99_us\": %.1f, "
                 "\"ann_p50_us\": %.1f, \"ann_p99_us\": %.1f, "
                 "\"speedup_single_thread\": %.2f, "
                 "\"recall_at_10\": %.4f}%s\n",
                 p.n, p.build_sec[0], p.build_sec[1], p.build_sec[2],
                 p.bit_identical ? "true" : "false", p.leaves, p.depth,
                 p.side_rows, p.brute_p50_us, p.brute_p99_us, p.ann_p50_us,
                 p.ann_p99_us, p.speedup_total, p.recall_at_10,
                 i + 1 < pts.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("bench json written to %s (%zu points, mode=%s)\n", path.c_str(),
              pts.size(), quick ? "quick" : "full");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  long long queries = 2000, max_leaf_visits = 48, threads = 0;
  double missing = 0.15;
  bool quick = false;
  std::string bench_json;
  FlagParser flags;
  flags.AddInt("queries", &queries, "query sample size per sweep point");
  flags.AddInt("max_leaf_visits", &max_leaf_visits,
               "ANN leaf budget (0 = exact)");
  flags.AddDouble("missing", &missing, "MCAR missing rate of the bench data");
  flags.AddBool("quick", &quick, "small sweep for CI smoke runs");
  flags.AddString("bench-json", &bench_json,
                  "write the machine-readable sweep to this path");
  bench::AddThreadsFlag(flags, &threads);
  bench::ObsSession obs("index_build_query");
  obs.AddFlags(flags);
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  bench::ApplyThreadsFlag(threads);
  obs.Start();
  obs.report().AddConfig("queries", static_cast<int64_t>(queries));
  obs.report().AddConfig("missing", missing);
  obs.report().AddConfig("max_leaf_visits",
                         static_cast<int64_t>(max_leaf_visits));

  const size_t d = 6;
  const std::vector<size_t> sweep =
      quick ? std::vector<size_t>{2000, 8000}
            : std::vector<size_t>{8000, 30000, 120000};
  std::vector<SweepPoint> points;
  std::printf("%8s %10s %8s %10s %10s %10s %10s %9s %7s\n", "n", "build_s",
              "ident", "brute_p50", "brute_p99", "ann_p50", "ann_p99",
              "speedup", "recall");
  for (const size_t n : sweep) {
    const SweepPoint pt =
        RunPoint(n, d, missing, static_cast<size_t>(queries),
                 static_cast<size_t>(max_leaf_visits), /*seed=*/11 + n);
    std::printf("%8zu %10.3f %8s %9.1fu %9.1fu %9.1fu %9.1fu %8.2fx %7.4f\n",
                pt.n, pt.build_sec[0], pt.bit_identical ? "yes" : "NO",
                pt.brute_p50_us, pt.brute_p99_us, pt.ann_p50_us, pt.ann_p99_us,
                pt.speedup_total, pt.recall_at_10);
    points.push_back(pt);
  }

  int rc = 0;
  if (!bench_json.empty()) {
    rc = WriteBenchJson(bench_json, points, quick, missing, d,
                        static_cast<size_t>(max_leaf_visits));
  }
  return obs.Finish() || rc;
}
