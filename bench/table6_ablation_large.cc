// Table VI: the Table-V ablation on the million-size datasets. DIM-GAIN
// over the full data did not finish within 10^5 s in the paper and is
// shown as "-" by default (pass --run_dim_full=true to force it).
#include "bench/bench_common.h"

using namespace scis;
using namespace scis::bench;

namespace {

void RunDataset(const SyntheticSpec& spec, int epochs, int repeats,
                bool run_dim_full) {
  std::printf("\n=== Table VI — %s (%zu rows) ===\n", spec.name.c_str(),
              spec.rows);
  TablePrinter table({"Method", "RMSE (Bias)", "Time (s)", "R_t (%)"});
  {
    AggregateResult agg = Repeat(repeats, [&](uint64_t seed) {
      PreparedData prep = PrepareData(spec, 0.2, 0.0, seed);
      auto imp = MakeImputer("GAIN", epochs, seed);
      return RunPlain(**imp, prep);
    });
    table.AddRow(ResultRow("GAIN", agg, false));
  }
  const DimOptions dopts = PaperScisOptions(spec, epochs).dim;
  if (run_dim_full) {
    AggregateResult agg = Repeat(repeats, [&](uint64_t seed) {
      PreparedData prep = PrepareData(spec, 0.2, 0.0, seed);
      auto gen = MakeGenerative("GAIN", seed);
      return RunDim(*gen, dopts, prep);
    });
    table.AddRow(ResultRow("DIM-GAIN", agg, false));
  } else {
    table.AddRow(UnavailableRow("DIM-GAIN"));
  }
  {
    AggregateResult agg = Repeat(repeats, [&](uint64_t seed) {
      PreparedData prep = PrepareData(spec, 0.2, 0.0, seed);
      auto gen = MakeGenerative("GAIN", seed);
      return RunFixedDim(*gen, dopts, 0.10, prep);
    });
    table.AddRow(ResultRow("Fixed-DIM-GAIN", agg, true));
  }
  {
    AggregateResult agg = Repeat(repeats, [&](uint64_t seed) {
      PreparedData prep = PrepareData(spec, 0.2, 0.0, seed);
      auto gen = MakeGenerative("GAIN", seed);
      return RunScis(*gen, PaperScisOptions(spec, epochs), prep);
    });
    table.AddRow(ResultRow("SCIS-GAIN", agg, true));
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  long long epochs = 15;
  long long repeats = 1;
  bool run_dim_full = false;
  long long threads;
  FlagParser flags;
  ObsSession obs("table6_ablation_large");
  AddThreadsFlag(flags, &threads);
  obs.AddFlags(flags);
  flags.AddDouble("scale", &scale,
                  "multiplier on the CPU-sized default rows");
  flags.AddInt("epochs", &epochs, "deep-model training epochs");
  flags.AddInt("repeats", &repeats, "random divisions averaged");
  flags.AddBool("run_dim_full", &run_dim_full,
                "run full-data DIM-GAIN instead of the paper's '-'");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  ApplyThreadsFlag(threads);
  obs.Start();
  obs.report().AddConfig("scale", scale);
  obs.report().AddConfig("epochs", static_cast<int64_t>(epochs));
  obs.report().AddConfig("repeats", static_cast<int64_t>(repeats));
  obs.report().AddConfig("run_dim_full", run_dim_full);
  obs.report().AddConfig("threads",
                         static_cast<int64_t>(runtime::NumThreads()));
  RunDataset(SearchSpec(0.02 * scale), static_cast<int>(epochs),
             static_cast<int>(repeats), run_dim_full);
  RunDataset(WeatherSpec(0.008 * scale), static_cast<int>(epochs),
             static_cast<int>(repeats), run_dim_full);
  RunDataset(SurveilSpec(0.0025 * scale), static_cast<int>(epochs),
             static_cast<int>(repeats), run_dim_full);
  return obs.Finish();
}
