// lifecycle_loop — latency bench for the continuous-learning loop.
//
//   lifecycle_loop [--cols 8] [--quick] [--bench-json bench/BENCH_lifecycle.json]
//                  [--trace-out t.json] [--report-out r.json]
//
// For each store size in the sweep: append that much traffic to a fresh
// SampleStore (timing append throughput), replay it (timing replay
// throughput), then time two DriftController checks over the same store —
// one with a loose ε that stays confident (the steady-state "estimate"
// cost: replay + normalize + SSE Prepare + one confidence probe) and one
// with a tight ε that trips (the full detect → n* search → DIM retrain →
// checkpoint publish → validate → swap path). loop_ms − estimate_ms is
// what a drift event costs on top of the background check.
//
// The swap lands in a captured engine slot (no sockets — serving-path
// latency is serve_latency's job; scis_lifecycle covers the live-fleet
// loop). The committed full-mode baseline is bench/BENCH_lifecycle.json.
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "lifecycle/checkpoint_publisher.h"
#include "lifecycle/drift_controller.h"
#include "lifecycle/sample_store.h"
#include "serve/engine.h"
#include "tensor/rng.h"

using namespace scis;

namespace {

// A GAIN-shaped checkpoint with random weights (the loop's cost does not
// care that the model is untrained).
Checkpoint MakeCheckpoint(size_t d, uint64_t seed) {
  Rng rng(seed);
  Checkpoint ckpt;
  ckpt.version = 3;
  ckpt.meta.model = "GAIN";
  for (size_t j = 0; j < d; ++j) {
    ckpt.meta.columns.push_back({"c" + std::to_string(j), 0, 0});
    ckpt.meta.norm_lo.push_back(0.0);
    ckpt.meta.norm_hi.push_back(1.0);
  }
  ckpt.params.push_back({"gain.G.l0.W", rng.NormalMatrix(2 * d, d, 0.0, 0.3)});
  ckpt.params.push_back({"gain.G.l0.b", rng.NormalMatrix(1, d, 0.0, 0.1)});
  ckpt.params.push_back({"gain.G.l1.W", rng.NormalMatrix(d, d, 0.0, 0.3)});
  ckpt.params.push_back({"gain.G.l1.b", rng.NormalMatrix(1, d, 0.0, 0.1)});
  return ckpt;
}

struct LoopPoint {
  size_t rows = 0;
  size_t n_star = 0;
  double append_rows_per_s = 0.0;
  double replay_rows_per_s = 0.0;
  double estimate_ms = 0.0;  // confident check: replay + SSE probe
  double loop_ms = 0.0;      // drifted check: detect -> retrain -> swap
  bool swapped = false;
};

LoopPoint RunPoint(const Checkpoint& ckpt, size_t rows, size_t d,
                   const std::string& dir) {
  LoopPoint pt;
  pt.rows = rows;

  std::filesystem::remove_all(dir);
  Result<std::unique_ptr<lifecycle::SampleStore>> opened =
      lifecycle::SampleStore::Open(dir + "/samples", d);
  SCIS_CHECK_MSG(opened.ok(), "store open failed");
  std::shared_ptr<lifecycle::SampleStore> store = std::move(*opened);

  Rng rng(19);
  constexpr size_t kBatch = 64;
  Stopwatch append_watch;
  for (size_t at = 0; at < rows; at += kBatch) {
    const size_t n = std::min(kBatch, rows - at);
    Matrix batch(n, d);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < d; ++j) {
        batch(i, j) = rng.Bernoulli(0.3)
                          ? std::numeric_limits<double>::quiet_NaN()
                          : rng.Uniform();
      }
    }
    SCIS_CHECK_MSG(store->Append(batch).ok(), "append failed");
  }
  pt.append_rows_per_s =
      static_cast<double>(rows) / append_watch.ElapsedSeconds();

  Stopwatch replay_watch;
  size_t replayed = 0;
  SCIS_CHECK_MSG(
      store->Replay([&](const Matrix& rec) { replayed += rec.rows(); }).ok(),
      "replay failed");
  SCIS_CHECK_MSG(replayed == rows, "replay row mismatch");
  pt.replay_rows_per_s =
      static_cast<double>(rows) / replay_watch.ElapsedSeconds();

  lifecycle::DriftControllerOptions base;
  base.min_rows = 64;
  base.initial_trained_rows = 64;
  base.reservoir_rows = 128;
  base.retrain.epochs = 2;
  base.sse.eta_scale = 1e-5;

  // Confident check: ε far above every sampled distance.
  {
    lifecycle::DriftControllerOptions opts = base;
    opts.sse.epsilon = 1e6;
    Result<std::unique_ptr<lifecycle::DriftController>> ctl =
        lifecycle::DriftController::Create(store, ckpt, nullptr, opts);
    SCIS_CHECK_MSG(ctl.ok(), "controller create failed");
    Stopwatch watch;
    Result<lifecycle::DriftController::CheckOutcome> out = (*ctl)->RunCheck();
    pt.estimate_ms = watch.ElapsedSeconds() * 1e3;
    SCIS_CHECK_MSG(out.ok() && out->checked && !out->drifted,
                   "estimate check misbehaved");
  }

  // Drifted check: tight ε, n* search, retrain, publish into a captured
  // engine slot.
  {
    std::shared_ptr<const serve::ImputationEngine> slot;
    lifecycle::CheckpointPublisher publisher(
        dir + "/checkpoints",
        [&slot](std::shared_ptr<const serve::ImputationEngine> next) {
          slot = std::move(next);
          return Status::OK();
        });
    lifecycle::DriftControllerOptions opts = base;
    opts.sse.epsilon = 1e-4;
    Result<std::unique_ptr<lifecycle::DriftController>> ctl =
        lifecycle::DriftController::Create(
            store, ckpt,
            [&publisher](const ParamStore& params, const CheckpointMeta& meta,
                         const Matrix& validation) {
              Result<std::string> path =
                  publisher.Publish(params, meta, validation);
              return path.ok() ? Status::OK() : path.status();
            },
            opts);
    SCIS_CHECK_MSG(ctl.ok(), "controller create failed");
    Stopwatch watch;
    Result<lifecycle::DriftController::CheckOutcome> out = (*ctl)->RunCheck();
    pt.loop_ms = watch.ElapsedSeconds() * 1e3;
    SCIS_CHECK_MSG(out.ok() && out->drifted && out->retrained &&
                       out->published,
                   "drift check did not complete the loop");
    pt.n_star = out->n_star;
    pt.swapped = slot != nullptr && publisher.generation() == 1;
  }
  return pt;
}

int WriteBenchJson(const std::string& path, const std::vector<LoopPoint>& pts,
                   bool quick, size_t d) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::printf("bench-json: cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"schema\": \"scis-bench-lifecycle-v1\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(out, "  \"cols\": %zu,\n", d);
  std::fprintf(out, "  \"sweep\": [\n");
  for (size_t i = 0; i < pts.size(); ++i) {
    const LoopPoint& p = pts[i];
    std::fprintf(out,
                 "    {\"rows\": %zu, \"n_star\": %zu, "
                 "\"append_rows_per_s\": %.0f, \"replay_rows_per_s\": %.0f, "
                 "\"estimate_ms\": %.2f, \"loop_ms\": %.2f, "
                 "\"swapped\": %s}%s\n",
                 p.rows, p.n_star, p.append_rows_per_s, p.replay_rows_per_s,
                 p.estimate_ms, p.loop_ms, p.swapped ? "true" : "false",
                 i + 1 < pts.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("bench json written to %s (%zu points, mode=%s)\n", path.c_str(),
              pts.size(), quick ? "quick" : "full");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  long long cols = 8, threads = 0;
  bool quick = false;
  std::string bench_json;
  FlagParser flags;
  flags.AddInt("cols", &cols, "store/model width (columns)");
  flags.AddBool("quick", &quick, "small sweep for CI smoke runs");
  flags.AddString("bench-json", &bench_json,
                  "write the machine-readable loop sweep to this path");
  bench::AddThreadsFlag(flags, &threads);
  bench::ObsSession obs("lifecycle_loop");
  obs.AddFlags(flags);
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  bench::ApplyThreadsFlag(threads);
  obs.Start();
  obs.report().AddConfig("cols", static_cast<int64_t>(cols));
  obs.report().AddConfig("threads", static_cast<int64_t>(threads));
  obs.report().AddConfig("mode", quick ? "quick" : "full");

  const size_t d = static_cast<size_t>(cols);
  const Checkpoint ckpt = MakeCheckpoint(d, 17);
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("scis_lifecycle_bench." + std::to_string(::getpid())))
          .string();

  std::vector<size_t> sweep = quick ? std::vector<size_t>{512, 2048}
                                    : std::vector<size_t>{512, 2048, 8192};
  std::printf("lifecycle_loop: d=%zu, retrain epochs=2\n\n", d);
  std::printf("%-8s %8s %14s %14s %14s %12s\n", "rows", "n*", "append rows/s",
              "replay rows/s", "estimate ms", "loop ms");
  std::vector<LoopPoint> points;
  for (size_t rows : sweep) {
    LoopPoint pt = RunPoint(ckpt, rows, d, dir);
    std::printf("%-8zu %8zu %14.0f %14.0f %14.2f %12.2f%s\n", pt.rows,
                pt.n_star, pt.append_rows_per_s, pt.replay_rows_per_s,
                pt.estimate_ms, pt.loop_ms, pt.swapped ? "" : "  NO SWAP");
    SCIS_CHECK_MSG(pt.swapped, "loop point did not publish a generation");
    points.push_back(pt);
  }
  std::filesystem::remove_all(dir);

  if (!bench_json.empty()) {
    return WriteBenchJson(bench_json, points, quick, d);
  }
  return 0;
}
