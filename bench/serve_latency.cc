// serve_latency — latency/throughput bench for src/serve, batching layer
// and full TCP serving path.
//
//   serve_latency [--rows 2000] [--cols 9] [--max_wait_ms 2] [--threads 0]
//                 [--quick] [--bench-json bench/BENCH_serve.json]
//                 [--trace-out t.json] [--report-out r.json]
//
// Part 1 drives a BatchQueue directly (no sockets) with concurrent
// single-row clients at max_batch_rows 1, 8, and 64: the
// latency-vs-throughput trade-off the micro-batching knob controls.
//
// Part 2 measures the whole event-driven path — TCP loopback clients
// against the epoll server — sweeping connections {1, 8, 64} x shards
// {1, 2, 4} and reporting p50/p99 request latency and rows/s per cell.
// Every response is bit-checked against the offline engine, so the sweep
// doubles as a serving-correctness run. --bench-json writes the
// machine-readable sweep; the committed baseline is bench/BENCH_serve.json
// (full mode, see EXPERIMENTS.md).
#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "serve/batch_queue.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/server.h"
#include "tensor/rng.h"

using namespace scis;

namespace {

// A GAIN-shaped checkpoint with random weights; latency does not care that
// the model is untrained.
Checkpoint MakeCheckpoint(size_t d, uint64_t seed) {
  Rng rng(seed);
  Checkpoint ckpt;
  ckpt.version = 2;
  ckpt.meta.model = "GAIN";
  for (size_t j = 0; j < d; ++j) {
    ckpt.meta.columns.push_back({"c" + std::to_string(j), 0, 0});
    ckpt.meta.norm_lo.push_back(0.0);
    ckpt.meta.norm_hi.push_back(1.0);
  }
  ckpt.params.push_back({"g.l0.W", rng.NormalMatrix(2 * d, d, 0.0, 0.5)});
  ckpt.params.push_back({"g.l0.b", rng.NormalMatrix(1, d, 0.0, 0.1)});
  ckpt.params.push_back({"g.l1.W", rng.NormalMatrix(d, d, 0.0, 0.5)});
  ckpt.params.push_back({"g.l1.b", rng.NormalMatrix(1, d, 0.0, 0.1)});
  return ckpt;
}

double Percentile(std::vector<double> ms, double p) {
  std::sort(ms.begin(), ms.end());
  const size_t at = static_cast<size_t>(p * static_cast<double>(ms.size() - 1));
  return ms[at];
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<uint64_t>(a.data()[i]) !=
        std::bit_cast<uint64_t>(b.data()[i])) {
      return false;
    }
  }
  return true;
}

struct SweepPoint {
  size_t shards = 0;
  size_t connections = 0;
  size_t requests = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double rows_per_s = 0.0;
  bool bit_identical = true;
};

// One sweep cell: `connections` client threads (one TCP connection each)
// pull single-row requests from a shared counter against a `shards`-shard
// server, timing each round trip and bit-checking each response.
SweepPoint RunServePoint(
    const std::shared_ptr<const serve::ImputationEngine>& engine,
    const std::vector<Matrix>& requests, const std::vector<Matrix>& expected,
    size_t shards, size_t connections, double max_wait_ms) {
  SweepPoint pt;
  pt.shards = shards;
  pt.connections = connections;
  pt.requests = requests.size();

  serve::ServerOptions opts;
  opts.shards = shards;
  opts.queue.max_wait_ms = max_wait_ms;
  opts.queue.max_queue_rows = 1u << 16;
  serve::ImputationServer server(engine, opts);
  SCIS_CHECK_MSG(server.Start().ok(), "server start failed");

  std::vector<double> latency_ms(requests.size(), 0.0);
  std::atomic<size_t> next{0};
  std::atomic<bool> identical{true};
  Stopwatch watch;
  std::vector<std::thread> pool;
  for (size_t c = 0; c < connections; ++c) {
    pool.emplace_back([&] {
      Result<std::unique_ptr<serve::ImputationClient>> client =
          serve::ImputationClient::Connect("127.0.0.1", server.port());
      SCIS_CHECK_MSG(client.ok(), "client connect failed");
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= requests.size()) return;
        Stopwatch req_watch;
        Result<Matrix> out = (*client)->Impute(requests[i]);
        SCIS_CHECK_MSG(out.ok(), "request failed");
        latency_ms[i] = req_watch.ElapsedSeconds() * 1e3;
        if (!BitIdentical(out.value(), expected[i])) identical.store(false);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double seconds = watch.ElapsedSeconds();
  server.Shutdown();

  pt.p50_ms = Percentile(latency_ms, 0.50);
  pt.p99_ms = Percentile(latency_ms, 0.99);
  pt.rows_per_s = static_cast<double>(requests.size()) / seconds;
  pt.bit_identical = identical.load();
  return pt;
}

int WriteBenchJson(const std::string& path, const std::vector<SweepPoint>& pts,
                   bool quick, size_t d, double max_wait_ms) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::printf("bench-json: cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"schema\": \"scis-bench-serve-v1\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(out, "  \"cols\": %zu,\n", d);
  std::fprintf(out, "  \"max_wait_ms\": %.3f,\n", max_wait_ms);
  std::fprintf(out, "  \"sweep\": [\n");
  for (size_t i = 0; i < pts.size(); ++i) {
    const SweepPoint& p = pts[i];
    std::fprintf(out,
                 "    {\"shards\": %zu, \"connections\": %zu, "
                 "\"requests\": %zu, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                 "\"rows_per_s\": %.0f, \"bit_identical\": %s}%s\n",
                 p.shards, p.connections, p.requests, p.p50_ms, p.p99_ms,
                 p.rows_per_s, p.bit_identical ? "true" : "false",
                 i + 1 < pts.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("bench json written to %s (%zu points, mode=%s)\n", path.c_str(),
              pts.size(), quick ? "quick" : "full");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  long long rows = 2000, cols = 9, clients = 8, threads = 0;
  double max_wait_ms = 2.0;
  bool quick = false;
  std::string bench_json;
  FlagParser flags;
  flags.AddInt("rows", &rows, "single-row requests per sweep point");
  flags.AddInt("cols", &cols, "model width (columns)");
  flags.AddInt("clients", &clients, "client threads for the batching sweep");
  flags.AddDouble("max_wait_ms", &max_wait_ms, "micro-batch flush deadline");
  flags.AddBool("quick", &quick, "small sweep for CI smoke runs");
  flags.AddString("bench-json", &bench_json,
                  "write the machine-readable serving sweep to this path");
  bench::AddThreadsFlag(flags, &threads);
  bench::ObsSession obs("serve_latency");
  obs.AddFlags(flags);
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  bench::ApplyThreadsFlag(threads);
  obs.Start();
  if (quick && rows == 2000) rows = 400;
  obs.report().AddConfig("rows", static_cast<int64_t>(rows));
  obs.report().AddConfig("cols", static_cast<int64_t>(cols));
  obs.report().AddConfig("clients", static_cast<int64_t>(clients));
  obs.report().AddConfig("max_wait_ms", max_wait_ms);
  obs.report().AddConfig("threads", static_cast<int64_t>(threads));

  const size_t d = static_cast<size_t>(cols);
  Result<std::shared_ptr<const serve::ImputationEngine>> engine =
      serve::ImputationEngine::FromCheckpoint(MakeCheckpoint(d, 17));
  SCIS_CHECK_MSG(engine.ok(), "engine build failed");

  // One pre-generated request per row so the clients measure serving only;
  // expected bits come from the offline engine, the serving ground truth.
  Rng rng(23);
  std::vector<Matrix> requests;
  std::vector<Matrix> expected;
  for (long long i = 0; i < rows; ++i) {
    Matrix r(1, d);
    for (size_t j = 0; j < d; ++j) {
      r(0, j) = rng.Bernoulli(0.3)
                    ? std::numeric_limits<double>::quiet_NaN()
                    : rng.Uniform();
    }
    expected.push_back((*engine)->ImputeBatch(r).value());
    requests.push_back(std::move(r));
  }

  // Part 1: batching layer only (no sockets).
  std::printf("serve_latency: %lld single-row requests, %lld clients, "
              "d=%zu, max_wait=%.2gms\n\n",
              rows, clients, d, max_wait_ms);
  std::printf("%-16s %12s %12s %12s\n", "max_batch_rows", "p50 ms", "p99 ms",
              "rows/s");
  for (size_t batch_rows : {1u, 8u, 64u}) {
    serve::BatchQueueOptions qopts;
    qopts.max_batch_rows = batch_rows;
    qopts.max_wait_ms = max_wait_ms;
    qopts.max_queue_rows = 1u << 16;
    serve::BatchQueue queue(*engine, qopts);

    std::vector<double> latency_ms(static_cast<size_t>(rows), 0.0);
    std::atomic<size_t> next{0};
    Stopwatch watch;
    std::vector<std::thread> pool;
    for (long long c = 0; c < clients; ++c) {
      pool.emplace_back([&] {
        for (;;) {
          const size_t i = next.fetch_add(1);
          if (i >= requests.size()) return;
          Stopwatch req_watch;
          Result<Matrix> out = queue.Impute(requests[i]);
          SCIS_CHECK_MSG(out.ok(), "request failed");
          latency_ms[i] = req_watch.ElapsedSeconds() * 1e3;
        }
      });
    }
    for (std::thread& t : pool) t.join();
    const double seconds = watch.ElapsedSeconds();
    queue.Shutdown();

    const double p50 = Percentile(latency_ms, 0.50);
    const double p99 = Percentile(latency_ms, 0.99);
    const double rate = static_cast<double>(rows) / seconds;
    std::printf("%-16zu %12.3f %12.3f %12.0f\n", batch_rows, p50, p99, rate);
    const std::string section = "batch_" + std::to_string(batch_rows);
    obs.report().AddSectionValue(section, "p50_ms", p50);
    obs.report().AddSectionValue(section, "p99_ms", p99);
    obs.report().AddSectionValue(section, "rows_per_s", rate);
    obs.report().AddPhase(section, seconds);
  }

  // Part 2: the full TCP path — connections x shards sweep.
  const std::vector<size_t> conn_sweep =
      quick ? std::vector<size_t>{1, 8} : std::vector<size_t>{1, 8, 64};
  const std::vector<size_t> shard_sweep =
      quick ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4};
  std::vector<SweepPoint> points;
  std::printf("\n%-8s %-12s %12s %12s %12s %8s\n", "shards", "connections",
              "p50 ms", "p99 ms", "rows/s", "ident");
  for (const size_t shards : shard_sweep) {
    for (const size_t connections : conn_sweep) {
      const SweepPoint pt = RunServePoint(*engine, requests, expected, shards,
                                          connections, max_wait_ms);
      std::printf("%-8zu %-12zu %12.3f %12.3f %12.0f %8s\n", pt.shards,
                  pt.connections, pt.p50_ms, pt.p99_ms, pt.rows_per_s,
                  pt.bit_identical ? "yes" : "NO");
      const std::string section =
          "tcp_s" + std::to_string(shards) + "_c" + std::to_string(connections);
      obs.report().AddSectionValue(section, "p50_ms", pt.p50_ms);
      obs.report().AddSectionValue(section, "p99_ms", pt.p99_ms);
      obs.report().AddSectionValue(section, "rows_per_s", pt.rows_per_s);
      obs.report().AddSectionValue(section, "bit_identical",
                                   pt.bit_identical ? 1.0 : 0.0);
      points.push_back(pt);
      if (!pt.bit_identical) {
        std::printf("BIT-IDENTITY VIOLATION at shards=%zu connections=%zu\n",
                    shards, connections);
      }
    }
  }

  int rc = 0;
  for (const SweepPoint& pt : points) rc |= pt.bit_identical ? 0 : 1;
  if (!bench_json.empty()) {
    rc |= WriteBenchJson(bench_json, points, quick, d, max_wait_ms);
  }
  return obs.Finish() || rc;
}
