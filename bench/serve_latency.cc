// serve_latency — micro-batching latency/throughput bench for src/serve.
//
//   serve_latency [--rows 2000] [--cols 9] [--clients 8] [--threads 0]
//                 [--max_wait_ms 2] [--trace-out t.json] [--report-out r.json]
//
// Drives a BatchQueue (no sockets — this isolates the batching layer) with
// concurrent single-row clients at max_batch_rows 1, 8, and 64, and reports
// p50/p99 request latency and rows/s for each setting: the
// latency-vs-throughput trade-off the max_batch_rows knob controls.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "serve/batch_queue.h"
#include "serve/engine.h"
#include "tensor/rng.h"

using namespace scis;

namespace {

// A GAIN-shaped checkpoint with random weights; latency does not care that
// the model is untrained.
Checkpoint MakeCheckpoint(size_t d, uint64_t seed) {
  Rng rng(seed);
  Checkpoint ckpt;
  ckpt.version = 2;
  ckpt.meta.model = "GAIN";
  for (size_t j = 0; j < d; ++j) {
    ckpt.meta.columns.push_back({"c" + std::to_string(j), 0, 0});
    ckpt.meta.norm_lo.push_back(0.0);
    ckpt.meta.norm_hi.push_back(1.0);
  }
  ckpt.params.push_back({"g.l0.W", rng.NormalMatrix(2 * d, d, 0.0, 0.5)});
  ckpt.params.push_back({"g.l0.b", rng.NormalMatrix(1, d, 0.0, 0.1)});
  ckpt.params.push_back({"g.l1.W", rng.NormalMatrix(d, d, 0.0, 0.5)});
  ckpt.params.push_back({"g.l1.b", rng.NormalMatrix(1, d, 0.0, 0.1)});
  return ckpt;
}

double Percentile(std::vector<double> ms, double p) {
  std::sort(ms.begin(), ms.end());
  const size_t at = static_cast<size_t>(p * static_cast<double>(ms.size() - 1));
  return ms[at];
}

}  // namespace

int main(int argc, char** argv) {
  long long rows = 2000, cols = 9, clients = 8, threads = 0;
  double max_wait_ms = 2.0;
  FlagParser flags;
  flags.AddInt("rows", &rows, "single-row requests per batch-size setting");
  flags.AddInt("cols", &cols, "model width (columns)");
  flags.AddInt("clients", &clients, "concurrent client threads");
  flags.AddDouble("max_wait_ms", &max_wait_ms, "micro-batch flush deadline");
  bench::AddThreadsFlag(flags, &threads);
  bench::ObsSession obs("serve_latency");
  obs.AddFlags(flags);
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  bench::ApplyThreadsFlag(threads);
  obs.Start();
  obs.report().AddConfig("rows", static_cast<int64_t>(rows));
  obs.report().AddConfig("cols", static_cast<int64_t>(cols));
  obs.report().AddConfig("clients", static_cast<int64_t>(clients));
  obs.report().AddConfig("max_wait_ms", max_wait_ms);
  obs.report().AddConfig("threads", static_cast<int64_t>(threads));

  const size_t d = static_cast<size_t>(cols);
  Result<std::shared_ptr<const serve::ImputationEngine>> engine =
      serve::ImputationEngine::FromCheckpoint(MakeCheckpoint(d, 17));
  SCIS_CHECK_MSG(engine.ok(), "engine build failed");

  // One pre-generated request per row so the clients measure serving only.
  Rng rng(23);
  std::vector<Matrix> requests;
  for (long long i = 0; i < rows; ++i) {
    Matrix r(1, d);
    for (size_t j = 0; j < d; ++j) {
      r(0, j) = rng.Bernoulli(0.3)
                    ? std::numeric_limits<double>::quiet_NaN()
                    : rng.Uniform();
    }
    requests.push_back(std::move(r));
  }

  std::printf("serve_latency: %lld single-row requests, %lld clients, "
              "d=%zu, max_wait=%.2gms\n\n",
              rows, clients, d, max_wait_ms);
  std::printf("%-16s %12s %12s %12s\n", "max_batch_rows", "p50 ms", "p99 ms",
              "rows/s");
  for (size_t batch_rows : {1u, 8u, 64u}) {
    serve::BatchQueueOptions qopts;
    qopts.max_batch_rows = batch_rows;
    qopts.max_wait_ms = max_wait_ms;
    qopts.max_queue_rows = 1u << 16;
    serve::BatchQueue queue(*engine, qopts);

    std::vector<double> latency_ms(static_cast<size_t>(rows), 0.0);
    std::atomic<size_t> next{0};
    Stopwatch watch;
    std::vector<std::thread> pool;
    for (long long c = 0; c < clients; ++c) {
      pool.emplace_back([&] {
        for (;;) {
          const size_t i = next.fetch_add(1);
          if (i >= requests.size()) return;
          Stopwatch req_watch;
          Result<Matrix> out = queue.Impute(requests[i]);
          SCIS_CHECK_MSG(out.ok(), "request failed");
          latency_ms[i] = req_watch.ElapsedSeconds() * 1e3;
        }
      });
    }
    for (std::thread& t : pool) t.join();
    const double seconds = watch.ElapsedSeconds();
    queue.Shutdown();

    const double p50 = Percentile(latency_ms, 0.50);
    const double p99 = Percentile(latency_ms, 0.99);
    const double rate = static_cast<double>(rows) / seconds;
    std::printf("%-16zu %12.3f %12.3f %12.0f\n", batch_rows, p50, p99, rate);
    const std::string section = "batch_" + std::to_string(batch_rows);
    obs.report().AddSectionValue(section, "p50_ms", p50);
    obs.report().AddSectionValue(section, "p99_ms", p99);
    obs.report().AddSectionValue(section, "rows_per_s", rate);
    obs.report().AddPhase(section, seconds);
  }
  return obs.Finish();
}
