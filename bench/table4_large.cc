// Table IV: imputation methods over the million-size datasets Search,
// Weather, and Surveil. Only HIVAE, GINN, GAIN and the SCIS variants
// appear; everything else exceeded the paper's 10^5-second budget and is
// shown as "-" (same pattern here). SCIS-GINN finished only on Weather in
// the paper; plain GINN finished nowhere (its O(n²) similarity graph).
#include "bench/bench_common.h"

using namespace scis;
using namespace scis::bench;

namespace {

void RunDataset(const SyntheticSpec& spec, bool hivae, bool scis_ginn,
                int epochs, int repeats) {
  std::printf("\n=== Table IV — %s (%zu rows x %zu cols, %.2f%% missing) "
              "===\n",
              spec.name.c_str(), spec.rows, spec.cols,
              100.0 * spec.missing_rate);
  TablePrinter table({"Method", "RMSE (Bias)", "Time (s)", "R_t (%)"});

  if (hivae) {
    AggregateResult agg = Repeat(repeats, [&](uint64_t seed) {
      PreparedData prep = PrepareData(spec, 0.2, 0.0, seed);
      auto imp = MakeImputer("HIVAE", epochs, seed);
      return RunPlain(**imp, prep);
    });
    table.AddRow(ResultRow("HIVAE", agg, false));
  } else {
    table.AddRow(UnavailableRow("HIVAE"));
  }

  table.AddRow(UnavailableRow("GINN"));  // graph build infeasible at scale
  if (scis_ginn) {
    AggregateResult agg = Repeat(repeats, [&](uint64_t seed) {
      PreparedData prep = PrepareData(spec, 0.2, 0.0, seed);
      auto gen = MakeGenerative("GINN", seed);
      return RunScis(*gen, PaperScisOptions(spec, epochs), prep);
    });
    table.AddRow(ResultRow("SCIS-GINN", agg, true));
  } else {
    table.AddRow(UnavailableRow("SCIS-GINN"));
  }

  {
    AggregateResult agg = Repeat(repeats, [&](uint64_t seed) {
      PreparedData prep = PrepareData(spec, 0.2, 0.0, seed);
      auto imp = MakeImputer("GAIN", epochs, seed);
      return RunPlain(**imp, prep);
    });
    table.AddRow(ResultRow("GAIN", agg, false));
  }
  {
    AggregateResult agg = Repeat(repeats, [&](uint64_t seed) {
      PreparedData prep = PrepareData(spec, 0.2, 0.0, seed);
      auto gen = MakeGenerative("GAIN", seed);
      return RunScis(*gen, PaperScisOptions(spec, epochs), prep);
    });
    table.AddRow(ResultRow("SCIS-GAIN", agg, true));
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;  // multiplier on the CPU-sized defaults below
  long long epochs = 15;
  long long repeats = 1;
  long long threads;
  FlagParser flags;
  ObsSession obs("table4_large");
  AddThreadsFlag(flags, &threads);
  obs.AddFlags(flags);
  flags.AddDouble("scale", &scale,
                  "multiplier on the CPU-sized default rows");
  flags.AddInt("epochs", &epochs, "deep-model training epochs");
  flags.AddInt("repeats", &repeats, "random divisions averaged (paper: 5)");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  ApplyThreadsFlag(threads);
  obs.Start();
  obs.report().AddConfig("scale", scale);
  obs.report().AddConfig("epochs", static_cast<int64_t>(epochs));
  obs.report().AddConfig("repeats", static_cast<int64_t>(repeats));
  obs.report().AddConfig("threads",
                         static_cast<int64_t>(runtime::NumThreads()));

  // CPU-sized fractions of the paper's row counts (documented in
  // EXPERIMENTS.md): Search 948,762 -> ~19k (cols 424 -> 64),
  // Weather 4.9M -> ~39k, Surveil 22.5M -> ~56k.
  RunDataset(SearchSpec(0.02 * scale), /*hivae=*/false, /*scis_ginn=*/false,
             static_cast<int>(epochs), static_cast<int>(repeats));
  RunDataset(WeatherSpec(0.008 * scale), /*hivae=*/true, /*scis_ginn=*/true,
             static_cast<int>(epochs), static_cast<int>(repeats));
  RunDataset(SurveilSpec(0.0025 * scale), /*hivae=*/true,
             /*scis_ginn=*/false, static_cast<int>(epochs),
             static_cast<int>(repeats));
  return obs.Finish();
}
