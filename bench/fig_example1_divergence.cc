// §IV-A Example 1: the vanishing-gradient pathology, made concrete.
// True data δ0, generated data δθ, masks ~ Bernoulli(q). Prints, per θ:
//   * the closed-form JS divergence (0 at θ=0, the constant 2·log 2
//     elsewhere — zero gradient almost everywhere), and
//   * the empirical MS divergence (≈ 2qθ², smooth in θ) with its
//     finite-difference gradient (≈ 4qθ, informative everywhere).
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "eval/table.h"
#include "ot/divergence.h"
#include "common/string_util.h"

using namespace scis;
using namespace scis::bench;

namespace {

double MsAt(double theta, double q, size_t n, const SinkhornOptions& opts) {
  Matrix x(n, 1);  // all zeros: the true distribution δ0
  Matrix m(n, 1);
  for (size_t i = 0; i < n; ++i) m(i, 0) = i < static_cast<size_t>(q * n);
  Matrix xbar = Matrix::Full(n, 1, theta);
  return MsDivergence(xbar, x, m, opts, /*with_grad=*/false).value;
}

}  // namespace

int main(int argc, char** argv) {
  double q = 0.5;
  long long n = 64;
  long long threads;
  FlagParser flags;
  ObsSession obs("fig_example1_divergence");
  AddThreadsFlag(flags, &threads);
  obs.AddFlags(flags);
  flags.AddDouble("q", &q, "mask observation probability (Bernoulli)");
  flags.AddInt("n", &n, "empirical sample count");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  ApplyThreadsFlag(threads);
  obs.Start();
  obs.report().AddConfig("q", q);
  obs.report().AddConfig("n", static_cast<int64_t>(n));
  obs.report().AddConfig("threads",
                         static_cast<int64_t>(runtime::NumThreads()));

  SinkhornOptions opts;
  opts.lambda = 0.01;
  opts.max_iters = 3000;
  opts.tol = 1e-12;

  std::printf("=== Example 1 — JS vs MS divergence, q = %.2f ===\n", q);
  TablePrinter table({"theta", "JS(p0||ptheta)", "dJS/dtheta",
                      "MS (empirical)", "dMS/dtheta", "2*q*theta^2"});
  const double h = 0.01;
  for (double theta : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    const double js = theta == 0.0 ? 0.0 : 2.0 * std::log(2.0);
    const double djs = 0.0;  // zero almost everywhere
    const double ms = MsAt(theta, q, n, opts);
    const double dms =
        (MsAt(theta + h, q, n, opts) - MsAt(std::max(0.0, theta - h), q,
                                            n, opts)) /
        (theta == 0.0 ? h : 2 * h);
    table.AddRow({StrFormat("%.2f", theta), StrFormat("%.4f", js),
                  StrFormat("%.4f", djs), StrFormat("%.4f", ms),
                  StrFormat("%.4f", dms),
                  StrFormat("%.4f", 2.0 * q * theta * theta)});
  }
  table.Print();
  std::printf(
      "JS is flat away from 0 (vanishing gradient); the MS divergence is\n"
      "smooth with gradient ~ 4*q*theta, matching the Example-1 algebra.\n");
  return obs.Finish();
}
