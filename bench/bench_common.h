// Shared configuration for the table/figure reproduction benches.
//
// Default dataset scales are sized for a single CPU core; every bench
// accepts --scale / --epochs / --repeats to move along the paper's axes.
// The paper's per-dataset n0 values (§VI) are scaled with the data.
#ifndef SCIS_BENCH_BENCH_COMMON_H_
#define SCIS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/scis.h"
#include "eval/experiment.h"
#include "eval/table.h"
#include "models/gain_imputer.h"
#include "models/ginn_imputer.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "runtime/runtime.h"

namespace scis::bench {

// Registers the shared --threads flag. 0 (the default) keeps the runtime's
// own resolution order: SCIS_NUM_THREADS env var, then hardware concurrency.
inline void AddThreadsFlag(FlagParser& flags, long long* threads) {
  *threads = 0;
  flags.AddInt("threads", threads,
               "runtime worker threads (0 = SCIS_NUM_THREADS or hardware; "
               "1 = exact serial path)");
}

// Applies the parsed --threads value; call once after FlagParser::Parse.
inline void ApplyThreadsFlag(long long threads) {
  if (threads > 0) runtime::SetNumThreads(static_cast<int>(threads));
}

// Observability for a bench run: --trace-out / --report-out flags, metric
// and runtime-counter scoping, and the end-of-run file writes. Usage:
//
//   ObsSession obs("table3_small");
//   obs.AddFlags(flags);
//   ... flags.Parse(...) ...
//   obs.Start();                       // after ApplyThreadsFlag
//   obs.report().AddConfig("scale", scale);
//   ... run the bench ...
//   return obs.Finish();               // writes the requested files
class ObsSession {
 public:
  explicit ObsSession(const std::string& tool) : report_(tool) {}

  void AddFlags(FlagParser& flags) {
    flags.AddString("trace-out", &trace_out_,
                    "write a chrome://tracing JSON trace of this run");
    flags.AddString("report-out", &report_out_,
                    "write a machine-readable JSON run report");
  }

  // Arms span recording (only when a trace was requested) and zeroes the
  // metric/runtime counters so the report covers exactly this run. Call
  // once, after FlagParser::Parse.
  void Start() {
    if (!trace_out_.empty()) obs::SetTraceEnabled(true);
    obs::Registry::Global().Reset();
    runtime::ResetStats();
    watch_.Restart();
  }

  obs::RunReport& report() { return report_; }

  // Stamps the total wall-clock phase and the runtime pool stats, then
  // writes the requested outputs. Returns a main()-style exit code: 0, or
  // 1 when an output file could not be written.
  int Finish() {
    report_.AddPhase("total", watch_.ElapsedSeconds());
    const runtime::Stats rs = runtime::GetStats();
    report_.AddSectionValue("runtime", "threads",
                            static_cast<uint64_t>(rs.num_threads));
    report_.AddSectionValue("runtime", "parallel_regions",
                            rs.parallel_regions);
    report_.AddSectionValue("runtime", "serial_regions", rs.serial_regions);
    report_.AddSectionValue("runtime", "worker_chunks", rs.worker_chunks);
    report_.AddSectionValue("runtime", "inline_chunks", rs.inline_chunks);
    report_.AddSectionValue("runtime", "busy_ns", rs.busy_ns);
    report_.AddSectionValue("trace", "spans", obs::TraceSpanCount());
    report_.AddSectionValue("trace", "dropped", obs::TraceDroppedCount());
    int rc = 0;
    if (!report_out_.empty()) {
      if (Status st = report_.Write(report_out_); !st.ok()) {
        std::printf("report-out: %s\n", st.ToString().c_str());
        rc = 1;
      }
    }
    if (!trace_out_.empty()) {
      if (Status st = obs::WriteTrace(trace_out_); !st.ok()) {
        std::printf("trace-out: %s\n", st.ToString().c_str());
        rc = 1;
      }
    }
    return rc;
  }

 private:
  obs::RunReport report_;
  std::string trace_out_;
  std::string report_out_;
  Stopwatch watch_;
};

// The paper's initial sample sizes (§VI), keyed by dataset name.
inline size_t PaperInitialSize(const std::string& dataset) {
  if (dataset == "Trial" || dataset == "Emergency") return 500;
  if (dataset == "Response") return 2000;
  if (dataset == "Search") return 6000;
  return 20000;  // Weather, Surveil
}

// The paper's full row counts (Table II), keyed by dataset name.
inline size_t PaperRowCount(const std::string& dataset) {
  if (dataset == "Trial") return 6433;
  if (dataset == "Emergency") return 8364;
  if (dataset == "Response") return 200737;
  if (dataset == "Search") return 948762;
  if (dataset == "Weather") return 4911011;
  return 22507139;  // Surveil
}

// n0 scaled with the dataset (absolute sizes matter in Theorem 1); floored
// so the initial model still has enough rows to learn from.
inline size_t ScaledInitialSize(const std::string& dataset, size_t rows) {
  const double frac = static_cast<double>(rows) /
                      static_cast<double>(PaperRowCount(dataset));
  const auto scaled = static_cast<size_t>(
      static_cast<double>(PaperInitialSize(dataset)) * frac);
  return std::min(rows / 3, std::max<size_t>(400, scaled));
}

// SCIS configuration with the §VI hyper-parameters (λ=130, α=0.05, β=0.01,
// k=20, ε=0.001) on top of a scaled n0.
inline ScisOptions PaperScisOptions(const SyntheticSpec& spec, int epochs) {
  ScisOptions o;
  o.validation_size = std::min<size_t>(1000, spec.rows / 5);
  o.initial_size = ScaledInitialSize(spec.name, spec.rows);
  o.dim.epochs = epochs;
  o.dim.lambda = 130.0;
  o.sse.epsilon = 0.001;
  o.sse.alpha = 0.05;
  o.sse.beta = 0.01;
  o.sse.k = 20;
  return o;
}

// Builds a GAN imputer by name wired for SCIS (epochs handled by DIM).
inline std::unique_ptr<GenerativeImputer> MakeGenerative(
    const std::string& name, uint64_t seed) {
  Result<std::unique_ptr<GenerativeImputer>> res =
      MakeGenerativeImputer(name, seed);
  SCIS_CHECK_MSG(res.ok(), "unknown GAN imputer");
  return std::move(res).value();
}

// One row of a paper-style table; "-" marks the methods the paper reports
// as not finishing within 10^5 seconds at that scale.
inline std::vector<std::string> ResultRow(const std::string& method,
                                          const AggregateResult& agg,
                                          bool show_rt) {
  return {method, FormatMeanStd(agg.rmse.mean, agg.rmse.stddev),
          FormatSeconds(agg.seconds.mean),
          show_rt ? StrFormat("%.2f", agg.sample_rate.mean) : "100"};
}

inline std::vector<std::string> UnavailableRow(const std::string& method) {
  return {method, "-", "-", "-"};
}

}  // namespace scis::bench

#endif  // SCIS_BENCH_BENCH_COMMON_H_
