// The pre-fast-path autodiff engine, vendored verbatim from the git history
// of src/autodiff/tape.{h,cc} (trimmed to the ops a supervised MLP training
// step records). The train_throughput bench links this as its baseline arm
// so the reported speedup measures the fast path against the engine the
// repo actually ran before it — std::function backward closures, per-node
// parent vectors, fresh zero-initialized matrices for every op output,
// copy-assign gradient accumulation — rather than against a synthetic
// stand-in. Bench-only: nothing in src/ uses this.
#ifndef SCIS_BENCH_OLD_TAPE_H_
#define SCIS_BENCH_OLD_TAPE_H_

#include <functional>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/matrix_ops.h"

namespace scis::oldtape {

class Tape;

// Handle to a node on a Tape. Valid until Tape::Clear()/destruction.
class Var {
 public:
  Var() : tape_(nullptr), index_(0) {}
  Var(Tape* tape, size_t index) : tape_(tape), index_(index) {}

  bool valid() const { return tape_ != nullptr; }
  Tape* tape() const { return tape_; }
  size_t index() const { return index_; }

  const Matrix& value() const;
  const Matrix& grad() const;

 private:
  Tape* tape_;
  size_t index_;
};

class Tape {
 public:
  Tape();
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  Var Leaf(Matrix value);
  Var Constant(Matrix value);
  Var Node(Matrix value, std::vector<Var> parents,
           std::function<void(Tape&, const Matrix& grad)> backward);

  const Matrix& value(Var v) const;
  const Matrix& grad(Var v) const;

  void AccumulateGrad(Var v, const Matrix& delta);
  bool requires_grad(Var v) const;

  void Backward(Var loss);
  void Clear();

 private:
  struct NodeRec {
    Matrix value;
    Matrix grad;      // allocated lazily in Backward
    bool grad_alive;  // whether grad has been touched this pass
    bool requires_grad;
    std::vector<size_t> parents;
    std::function<void(Tape&, const Matrix& grad)> backward;
  };
  std::vector<NodeRec> nodes_;
};

// The differentiable ops of the old engine that an MLP training step
// records, byte-for-byte from the pre-fast-path tape.cc.
Var MatMul(Var a, Var b);
Var AddRowBroadcast(Var a, Var row);
Var Sigmoid(Var a);
Var Relu(Var a);
Var WeightedMseLoss(Var pred, Var target, Var weight);
Var WeightedBceLoss(Var p, Var labels, Var weight);

}  // namespace scis::oldtape

#endif  // SCIS_BENCH_OLD_TAPE_H_
