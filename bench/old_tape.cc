// See old_tape.h — verbatim pre-fast-path engine, trimmed to the MLP step.
#include "bench/old_tape.h"

#include <cmath>

#include "kernels/elementwise.h"

namespace scis::oldtape {

const Matrix& Var::value() const { return tape_->value(*this); }
const Matrix& Var::grad() const { return tape_->grad(*this); }

Tape::Tape() = default;

Var Tape::Leaf(Matrix value) {
  nodes_.push_back(NodeRec{std::move(value), Matrix(), false, true, {}, {}});
  return Var(this, nodes_.size() - 1);
}

Var Tape::Constant(Matrix value) {
  nodes_.push_back(NodeRec{std::move(value), Matrix(), false, false, {}, {}});
  return Var(this, nodes_.size() - 1);
}

Var Tape::Node(Matrix value, std::vector<Var> parents,
               std::function<void(Tape&, const Matrix& grad)> backward) {
  bool needs_grad = false;
  std::vector<size_t> pidx;
  pidx.reserve(parents.size());
  for (const Var& p : parents) {
    SCIS_CHECK_MSG(p.tape() == this, "op mixes nodes from different tapes");
    needs_grad = needs_grad || nodes_[p.index()].requires_grad;
    pidx.push_back(p.index());
  }
  nodes_.push_back(NodeRec{std::move(value), Matrix(), false, needs_grad,
                           std::move(pidx),
                           needs_grad ? std::move(backward) : nullptr});
  return Var(this, nodes_.size() - 1);
}

const Matrix& Tape::value(Var v) const {
  SCIS_CHECK_LT(v.index(), nodes_.size());
  return nodes_[v.index()].value;
}

const Matrix& Tape::grad(Var v) const {
  SCIS_CHECK_LT(v.index(), nodes_.size());
  const NodeRec& n = nodes_[v.index()];
  if (!n.grad_alive) {
    const_cast<NodeRec&>(n).grad = Matrix(n.value.rows(), n.value.cols());
    const_cast<NodeRec&>(n).grad_alive = true;
  }
  return n.grad;
}

bool Tape::requires_grad(Var v) const {
  SCIS_CHECK_LT(v.index(), nodes_.size());
  return nodes_[v.index()].requires_grad;
}

void Tape::AccumulateGrad(Var v, const Matrix& delta) {
  NodeRec& n = nodes_[v.index()];
  if (!n.requires_grad) return;
  if (!n.grad_alive) {
    n.grad = delta;
    n.grad_alive = true;
  } else {
    AddInPlace(n.grad, delta);
  }
}

void Tape::Backward(Var loss) {
  SCIS_CHECK_MSG(loss.tape() == this, "loss from another tape");
  const NodeRec& ln = nodes_[loss.index()];
  SCIS_CHECK_MSG(ln.value.rows() == 1 && ln.value.cols() == 1,
                 "Backward target must be scalar");
  for (NodeRec& n : nodes_) n.grad_alive = false;
  AccumulateGrad(loss, Matrix::Ones(1, 1));
  for (size_t k = loss.index() + 1; k-- > 0;) {
    NodeRec& n = nodes_[k];
    if (!n.grad_alive || !n.backward) continue;
    n.backward(*this, n.grad);
  }
}

void Tape::Clear() { nodes_.clear(); }

namespace {
// Shorthand for building a node whose backward only touches one parent.
Var Unary(Var a, Matrix value,
          std::function<Matrix(const Matrix& grad)> grad_a) {
  Tape* t = a.tape();
  return t->Node(std::move(value), {a},
                 [a, grad_a](Tape& tape, const Matrix& g) {
                   tape.AccumulateGrad(a, grad_a(g));
                 });
}
}  // namespace

Var MatMul(Var a, Var b) {
  Tape* t = a.tape();
  Matrix out = MatMul(a.value(), b.value());
  return t->Node(std::move(out), {a, b}, [a, b](Tape& tape, const Matrix& g) {
    if (tape.requires_grad(a))
      tape.AccumulateGrad(a, MatMulTransB(g, b.value()));
    if (tape.requires_grad(b))
      tape.AccumulateGrad(b, MatMulTransA(a.value(), g));
  });
}

Var AddRowBroadcast(Var a, Var row) {
  Tape* t = a.tape();
  return t->Node(AddRowBroadcast(a.value(), row.value()), {a, row},
                 [a, row](Tape& tape, const Matrix& g) {
                   tape.AccumulateGrad(a, g);
                   if (tape.requires_grad(row))
                     tape.AccumulateGrad(row, ColSum(g));
                 });
}

Var Sigmoid(Var a) {
  Matrix y = Sigmoid(a.value());
  Matrix y_copy = y;  // captured for backward: dy/dx = y(1-y)
  return Unary(a, std::move(y), [y_copy](const Matrix& g) {
    Matrix d = Mul(y_copy, Map(y_copy, [](double v) { return 1.0 - v; }));
    return Mul(g, d);
  });
}

Var Relu(Var a) {
  Matrix mask = Map(a.value(), [](double v) { return v > 0 ? 1.0 : 0.0; });
  return Unary(a, Relu(a.value()),
               [mask](const Matrix& g) { return Mul(g, mask); });
}

Var WeightedMseLoss(Var pred, Var target, Var weight) {
  Tape* t = pred.tape();
  const Matrix& p = pred.value();
  const Matrix& y = target.value();
  const Matrix& w = weight.value();
  SCIS_CHECK(p.SameShape(y) && p.SameShape(w));
  double wsum = Sum(w);
  if (wsum <= 0) wsum = 1.0;  // fully-missing batch: zero loss, zero grad
  Matrix out(1, 1);
  out(0, 0) = kernels::WeightedSse(w.data(), p.data(), y.data(), p.size()) /
              wsum;
  return t->Node(std::move(out), {pred, target, weight},
                 [pred, target, weight, wsum](Tape& tape, const Matrix& g) {
                   const Matrix& pv = pred.value();
                   const Matrix& yv = target.value();
                   const Matrix& wv = weight.value();
                   Matrix gp(pv.rows(), pv.cols());
                   kernels::WeightedDiff(wv.data(), pv.data(), yv.data(),
                                         2.0 * g(0, 0) / wsum, gp.data(),
                                         pv.size());
                   if (tape.requires_grad(pred)) tape.AccumulateGrad(pred, gp);
                   if (tape.requires_grad(target))
                     tape.AccumulateGrad(target, MulScalar(gp, -1.0));
                 });
}

Var WeightedBceLoss(Var p, Var labels, Var weight) {
  Tape* t = p.tape();
  constexpr double kEps = 1e-8;
  const Matrix& pv = p.value();
  const Matrix& yv = labels.value();
  const Matrix& wv = weight.value();
  SCIS_CHECK(pv.SameShape(yv) && pv.SameShape(wv));
  double wsum = Sum(wv);
  if (wsum <= 0) wsum = 1.0;
  Matrix pc = Clamp(pv, kEps, 1.0 - kEps);
  double acc = 0.0;
  for (size_t k = 0; k < pc.size(); ++k) {
    const double pk = pc.data()[k], yk = yv.data()[k], wk = wv.data()[k];
    acc -= wk * (yk * std::log(pk) + (1.0 - yk) * std::log(1.0 - pk));
  }
  Matrix out(1, 1);
  out(0, 0) = acc / wsum;
  return t->Node(
      std::move(out), {p, labels, weight},
      [p, pc, yv, wv, wsum](Tape& tape, const Matrix& g) {
        if (!tape.requires_grad(p)) return;
        Matrix gp(pc.rows(), pc.cols());
        for (size_t k = 0; k < pc.size(); ++k) {
          const double pk = pc.data()[k], yk = yv.data()[k],
                       wk = wv.data()[k];
          gp.data()[k] =
              g(0, 0) * wk * (pk - yk) / (pk * (1.0 - pk)) / wsum;
        }
        tape.AccumulateGrad(p, gp);
      });
}

}  // namespace scis::oldtape
