// Microbenchmarks (google-benchmark) for the kernels that dominate SCIS
// runtime: Sinkhorn solves, the MS divergence + Prop.-1 gradient, autodiff
// MLP steps, the GINN kNN graph build, and CART tree fitting. These back
// the DESIGN.md ablation on log-domain Sinkhorn cost vs λ.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"

#include "core/dim.h"
#include "kernels/elementwise.h"
#include "kernels/lse.h"
#include "models/gain_imputer.h"
#include "models/tree.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "ot/divergence.h"
#include "ot/sinkhorn.h"
#include "runtime/runtime.h"
#include "tensor/matrix_ops.h"
#include "tensor/rng.h"
#include "tensor/sparse.h"

namespace scis {
namespace {

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Matrix a = rng.NormalMatrix(n, n);
  Matrix b = rng.NormalMatrix(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_PairwiseDistances(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  Matrix a = rng.UniformMatrix(n, 16, 0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PairwiseSquaredDistances(a, a));
  }
}
BENCHMARK(BM_PairwiseDistances)->Arg(128)->Arg(512);

// Sinkhorn iteration cost vs λ: large λ (the paper's 130) converges in a
// couple of iterations; small λ needs many more — the log-domain solver
// trades per-iteration cost for unconditional stability.
void BM_Sinkhorn(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const double lambda = static_cast<double>(state.range(1)) / 100.0;
  Rng rng(3);
  Matrix x = rng.UniformMatrix(n, 8, 0, 1);
  Matrix cost = PairwiseSquaredDistances(x, x);
  SinkhornOptions opts;
  opts.lambda = lambda;
  opts.max_iters = 200;
  opts.tol = 1e-9;
  int iters = 0;
  for (auto _ : state) {
    SinkhornSolution s = SolveSinkhorn(cost, opts);
    iters = s.iters;
    benchmark::DoNotOptimize(s.reg_value);
  }
  state.counters["sinkhorn_iters"] = iters;
}
BENCHMARK(BM_Sinkhorn)
    ->Args({128, 5})      // λ = 0.05
    ->Args({128, 100})    // λ = 1
    ->Args({128, 13000})  // λ = 130 (paper)
    ->Args({256, 13000});

void BM_MsDivergenceWithGrad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  Matrix x = rng.UniformMatrix(n, 9, 0, 1);
  Matrix xbar = rng.UniformMatrix(n, 9, 0, 1);
  Matrix m = rng.BernoulliMatrix(n, 9, 0.7);
  SinkhornOptions opts;
  opts.lambda = 130.0;
  opts.max_iters = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MsDivergence(xbar, x, m, opts, true));
  }
}
BENCHMARK(BM_MsDivergenceWithGrad)->Arg(64)->Arg(128)->Arg(256);

void BM_MlpForwardBackward(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(5);
  ParamStore store;
  Mlp net(&store, "bench", {18, 9, 9}, Activation::kRelu,
          Activation::kSigmoid, rng);
  Adam adam(1e-3);
  Matrix x = rng.UniformMatrix(batch, 18, 0, 1);
  Matrix y = rng.UniformMatrix(batch, 9, 0, 1);
  Matrix w = Matrix::Ones(batch, 9);
  for (auto _ : state) {
    Tape tape;
    Var pred = net.Forward(tape, tape.Constant(x));
    Var loss = WeightedMseLoss(pred, tape.Constant(y), tape.Constant(w));
    tape.Backward(loss);
    adam.Step(store, store.CollectGrads());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MlpForwardBackward)->Arg(128)->Arg(512);

void BM_GainTrainingEpoch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(6);
  Matrix values = rng.UniformMatrix(n, 9, 0, 1);
  Matrix mask = rng.BernoulliMatrix(n, 9, 0.8);
  MulInPlace(values, mask);
  Dataset data("bench", values, mask, {});
  for (auto _ : state) {
    GainImputerOptions o;
    o.deep.epochs = 1;
    GainImputer gain(o);
    benchmark::DoNotOptimize(gain.Fit(data));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GainTrainingEpoch)->Arg(1024)->Arg(4096);

void BM_DimTrainingEpoch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  Matrix values = rng.UniformMatrix(n, 9, 0, 1);
  Matrix mask = rng.BernoulliMatrix(n, 9, 0.8);
  MulInPlace(values, mask);
  Dataset data("bench", values, mask, {});
  for (auto _ : state) {
    GainImputerOptions o;
    o.deep.epochs = 1;
    GainImputer gain(o);
    DimOptions d;
    d.epochs = 1;
    d.lambda = 130.0;
    DimTrainer dim(d);
    benchmark::DoNotOptimize(dim.Train(gain, data));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DimTrainingEpoch)->Arg(1024)->Arg(4096);

// The O(n²·d) graph build that makes GINN infeasible at scale.
void BM_KnnGraphBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(8);
  Matrix x = rng.UniformMatrix(n, 9, 0, 1);
  Matrix m = rng.BernoulliMatrix(n, 9, 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildKnnGraph(x, m, 10));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_KnnGraphBuild)->Arg(512)->Arg(2048);

void BM_TreeFit(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(9);
  Matrix x = rng.UniformMatrix(n, 8, 0, 1);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) y[i] = x(i, 0) + 0.5 * x(i, 3);
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (auto _ : state) {
    RegressionTree tree;
    tree.Fit(x, y, idx, rng);
    benchmark::DoNotOptimize(tree.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TreeFit)->Arg(1024)->Arg(8192);

// ---------------------------------------------------------------------------
// Thread-count sweeps for the runtime-parallelized hot paths. Each arm
// reconfigures the global pool, times the kernel by hand, and reports the
// speedup over the 1-thread arm (which runs first and is the exact serial
// code path) plus the runtime's chunk/busy counters — this is the perf
// trajectory the BENCH json tracks.

double g_sinkhorn_serial_ns = 0.0;
double g_matmul_serial_ns = 0.0;

template <typename Kernel>
void RunThreadSweep(benchmark::State& state, int threads,
                    double* serial_ns_slot, Kernel&& kernel) {
  runtime::SetNumThreads(threads);
  runtime::ResetStats();
  double total_ns = 0.0;
  int64_t iters = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    kernel();
    const auto t1 = std::chrono::steady_clock::now();
    total_ns += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    ++iters;
  }
  const double per_iter = iters > 0 ? total_ns / static_cast<double>(iters)
                                    : 0.0;
  if (threads == 1) *serial_ns_slot = per_iter;
  const runtime::Stats stats = runtime::GetStats();
  state.counters["threads"] = threads;
  state.counters["worker_chunks"] =
      static_cast<double>(stats.worker_chunks) /
      std::max<int64_t>(1, iters);
  state.counters["pool_busy_ms"] =
      static_cast<double>(stats.busy_ns) / 1e6 /
      std::max<int64_t>(1, iters);
  if (*serial_ns_slot > 0.0 && per_iter > 0.0) {
    state.counters["speedup_vs_1t"] = *serial_ns_slot / per_iter;
  }
  runtime::SetNumThreads(0);  // restore the env/hardware default
}

// Fixed iteration count (tol = 0 never converges early) so every arm does
// identical work on the paper-scale 1000x1000 cost matrix.
void BM_SinkhornThreadSweep(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  Rng rng(10);
  Matrix x = rng.UniformMatrix(1000, 8, 0, 1);
  Matrix cost = PairwiseSquaredDistances(x, x);
  SinkhornOptions opts;
  opts.lambda = 130.0;
  opts.max_iters = 5;
  opts.tol = 0.0;
  RunThreadSweep(state, threads, &g_sinkhorn_serial_ns, [&] {
    benchmark::DoNotOptimize(SolveSinkhorn(cost, opts).reg_value);
  });
}
BENCHMARK(BM_SinkhornThreadSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MatMulThreadSweep(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  Rng rng(11);
  Matrix a = rng.NormalMatrix(512, 512);
  Matrix b = rng.NormalMatrix(512, 512);
  RunThreadSweep(state, threads, &g_matmul_serial_ns, [&] {
    benchmark::DoNotOptimize(MatMul(a, b));
  });
}
BENCHMARK(BM_MatMulThreadSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// ---------------------------------------------------------------------------
// --bench-json mode: a hand-rolled sweep over the src/kernels-backed hot
// paths, emitting machine-readable per-kernel ns/op at 1/2/4/8 threads.
// This is the file checked in as bench/BENCH_kernels.json (the perf
// baseline new PRs diff against; see EXPERIMENTS.md for methodology).
// Deliberately not google-benchmark: the schema stays stable and tiny, and
// quick mode is fast enough to run as a CI smoke test.

double TimeNsPerOp(const std::function<void()>& op, double min_seconds) {
  op();  // warm-up (first-touch, pool spin-up)
  int reps = 1;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) op();
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (sec >= min_seconds || reps >= (1 << 22)) {
      return sec * 1e9 / static_cast<double>(reps);
    }
    const double grow = sec > 0.0 ? 1.3 * min_seconds / sec : 8.0;
    reps = static_cast<int>(static_cast<double>(reps) *
                            std::max(2.0, grow));
  }
}

int RunKernelBenchJson(const std::string& path, bool quick) {
  struct BenchCase {
    std::string name;
    std::function<void()> op;
  };
  const double min_sec = quick ? 0.02 : 0.25;
  const size_t sink_n = quick ? 256 : 1000;
  const size_t mm_n = quick ? 128 : 512;
  const size_t tmm_n = quick ? 96 : 256;
  const size_t map_n = quick ? 128 : 512;
  const size_t vec_n = 1 << 16;

  Rng rng(42);
  Matrix x = rng.UniformMatrix(sink_n, 8, 0, 1);
  Matrix cost = PairwiseSquaredDistances(x, x);
  SinkhornOptions opts;
  opts.lambda = 130.0;
  opts.max_iters = 5;
  opts.tol = 0.0;  // fixed work: 5 dual iterations + plan recovery
  Matrix a = rng.NormalMatrix(mm_n, mm_n);
  Matrix b = rng.NormalMatrix(mm_n, mm_n);
  Matrix ta = rng.NormalMatrix(tmm_n, tmm_n);
  Matrix tb = rng.NormalMatrix(tmm_n, tmm_n);
  Matrix mp = rng.UniformMatrix(map_n, map_n, -6.0, 2.0);
  Matrix w = rng.UniformMatrix(1, vec_n, 0.0, 1.0);
  Matrix p = rng.UniformMatrix(1, vec_n, 0.0, 1.0);
  Matrix y = rng.UniformMatrix(1, vec_n, 0.0, 1.0);
  Matrix acc = Matrix::Ones(1, vec_n);

  const std::vector<BenchCase> cases = {
      {"sinkhorn_solve_" + std::to_string(sink_n),
       [&] { benchmark::DoNotOptimize(SolveSinkhorn(cost, opts).reg_value); }},
      {"matmul_" + std::to_string(mm_n),
       [&] { benchmark::DoNotOptimize(MatMul(a, b)); }},
      {"matmul_transa_" + std::to_string(tmm_n),
       [&] { benchmark::DoNotOptimize(MatMulTransA(ta, tb)); }},
      {"matmul_transb_" + std::to_string(tmm_n),
       [&] { benchmark::DoNotOptimize(MatMulTransB(ta, tb)); }},
      {"transpose_" + std::to_string(mm_n),
       [&] { benchmark::DoNotOptimize(Transpose(a)); }},
      {"exp_map_" + std::to_string(map_n),
       [&] { benchmark::DoNotOptimize(Exp(mp)); }},
      {"sigmoid_map_" + std::to_string(map_n),
       [&] { benchmark::DoNotOptimize(Sigmoid(mp)); }},
      {"logsumexp_" + std::to_string(vec_n),
       [&] {
         benchmark::DoNotOptimize(kernels::LogSumExp(p.data(), vec_n));
       }},
      {"weighted_sse_" + std::to_string(vec_n),
       [&] {
         benchmark::DoNotOptimize(
             kernels::WeightedSse(w.data(), p.data(), y.data(), vec_n));
       }},
      {"axpy_" + std::to_string(vec_n),
       [&] { AxpyInPlace(acc, 1e-9, p); }},
  };

  const int thread_arms[] = {1, 2, 4, 8};
  // results[case][arm] — the 1-thread arm is the serial code path.
  std::vector<std::array<double, 4>> results(cases.size());
  for (int t = 0; t < 4; ++t) {
    runtime::SetNumThreads(thread_arms[t]);
    for (size_t c = 0; c < cases.size(); ++c) {
      results[c][t] = TimeNsPerOp(cases[c].op, min_sec);
    }
  }
  runtime::SetNumThreads(0);

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::printf("bench-json: cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"schema\": \"scis-bench-kernels-v1\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(out, "  \"kernels\": [\n");
  for (size_t c = 0; c < cases.size(); ++c) {
    std::fprintf(out, "    {\"name\": \"%s\", \"ns_per_op\": {",
                 cases[c].name.c_str());
    for (int t = 0; t < 4; ++t) {
      std::fprintf(out, "%s\"%d\": %.1f", t ? ", " : "", thread_arms[t],
                   results[c][t]);
    }
    std::fprintf(out, "}}%s\n", c + 1 < cases.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("bench json written to %s (%zu kernels, mode=%s)\n",
              path.c_str(), cases.size(), quick ? "quick" : "full");
  return 0;
}

}  // namespace scis

int main(int argc, char** argv) {
  // --threads=<n>, --trace-out=<p>, --report-out=<p>, --bench-json=<p> and
  // --quick are ours; strip them before google-benchmark sees the argv.
  std::string trace_out, report_out, bench_json;
  bool quick = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      scis::runtime::SetNumThreads(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--report-out=", 13) == 0) {
      report_out = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--bench-json=", 13) == 0) {
      bench_json = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (!bench_json.empty()) {
    return scis::RunKernelBenchJson(bench_json, quick);
  }
  if (!trace_out.empty()) {
    scis::obs::ClearTrace();
    scis::obs::SetTraceEnabled(true);
    scis::obs::SetCurrentThreadName("main");
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const scis::runtime::Stats stats = scis::runtime::GetStats();
  std::printf("%s\n", stats.ToString().c_str());
  int rc = 0;
  if (!trace_out.empty()) {
    scis::obs::SetTraceEnabled(false);
    if (scis::Status st = scis::obs::WriteTrace(trace_out); !st.ok()) {
      std::printf("trace write failed: %s\n", st.ToString().c_str());
      rc = 1;
    } else {
      std::printf("trace written to %s (%llu spans)\n", trace_out.c_str(),
                  static_cast<unsigned long long>(scis::obs::TraceSpanCount()));
    }
  }
  if (!report_out.empty()) {
    scis::obs::RunReport report("micro_kernels");
    report.AddConfig("threads",
                     static_cast<int64_t>(scis::runtime::NumThreads()));
    report.AddSectionValue("runtime", "parallel_regions",
                           stats.parallel_regions);
    report.AddSectionValue("runtime", "serial_regions", stats.serial_regions);
    report.AddSectionValue("runtime", "worker_chunks", stats.worker_chunks);
    report.AddSectionValue("runtime", "inline_chunks", stats.inline_chunks);
    report.AddSectionValue("runtime", "busy_ns", stats.busy_ns);
    if (scis::Status st = report.Write(report_out); !st.ok()) {
      std::printf("report write failed: %s\n", st.ToString().c_str());
      rc = 1;
    } else {
      std::printf("run report written to %s\n", report_out.c_str());
    }
  }
  return rc;
}
