// sinkhorn_scale — dense vs low-rank Sinkhorn scaling sweep over n.
//
//   sinkhorn_scale [--quick] [--missing 0.2] [--lambda 5.0] [--plan_topk 32]
//                  [--bench-json bench/BENCH_sinkhorn.json]
//                  [--trace-out t.json] [--report-out r.json]
//
// For each n (= m) the bench solves the same Def.-2 masked OT problem with
// the exact dense solver (rank = 0, O(n·m) per iteration, materialized cost
// and plan) and with the low-rank factored solver (auto rank ≈ 2√n,
// O((n+m)·r) per iteration, truncated sparse plan), both anchored to a
// single thread so the numbers measure algorithmic work rather than core
// count. Reported per point: wall time of each arm, the speedup, the
// relative objective gap between the two solvers, and whether the low-rank
// arm is bit-identical at 1/2/4 threads. --bench-json writes the
// machine-readable sweep; the committed baseline is bench/BENCH_sinkhorn.json
// (full mode, see EXPERIMENTS.md — the gap-vs-rank methodology and the
// oracle certificate behind the 1e-2 budget live there and in the
// SinkhornLowRank test suite).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "ot/sinkhorn.h"
#include "tensor/rng.h"

using namespace scis;

namespace {

struct SweepPoint {
  size_t n = 0;
  int rank = 0;
  double dense_sec = 0.0;
  double lowrank_sec = 0.0;
  double speedup = 0.0;
  double dense_obj = 0.0;
  double lowrank_obj = 0.0;
  double rel_gap = 0.0;
  bool bit_identical = false;
};

bool SameLowRankSolution(const SinkhornSolution& x, const SinkhornSolution& y) {
  if (x.iters != y.iters || x.reg_value != y.reg_value ||
      x.transport_cost != y.transport_cost ||
      x.sparse_plan.nnz() != y.sparse_plan.nnz()) {
    return false;
  }
  for (size_t i = 0; i < x.f.size(); ++i)
    if (x.f[i] != y.f[i]) return false;
  for (size_t j = 0; j < x.g.size(); ++j)
    if (x.g[j] != y.g[j]) return false;
  for (size_t t = 0; t < x.sparse_plan.nnz(); ++t) {
    if (x.sparse_plan.col_idx()[t] != y.sparse_plan.col_idx()[t] ||
        x.sparse_plan.values()[t] != y.sparse_plan.values()[t]) {
      return false;
    }
  }
  return true;
}

SweepPoint RunPoint(size_t n, size_t d, double missing, double lambda,
                    int plan_topk, uint64_t seed) {
  Rng rng(seed);
  const Matrix a = rng.UniformMatrix(n, d, 0.0, 1.0);
  const Matrix b = rng.UniformMatrix(n, d, 0.0, 1.0);
  const Matrix ma = rng.BernoulliMatrix(n, d, 1.0 - missing);
  const Matrix mb = rng.BernoulliMatrix(n, d, 1.0 - missing);

  SinkhornOptions opts;
  opts.lambda = lambda;
  opts.max_iters = 200;
  opts.tol = 1e-6;  // shared by both arms: same convergence target
  opts.plan_topk = plan_topk;

  SweepPoint pt;
  pt.n = n;

  // Dense exact arm, single thread.
  runtime::SetNumThreads(1);
  opts.rank = 0;
  {
    Stopwatch watch;
    const SinkhornSolution dense = SolveSinkhornMasked(a, ma, b, mb, opts);
    pt.dense_sec = watch.ElapsedSeconds();
    pt.dense_obj = dense.reg_value;
  }

  // Low-rank arm: auto rank with the size threshold disabled so every sweep
  // point exercises the factored path (below 4096 rows production would
  // stay dense).
  opts.rank = SinkhornOptions::kAutoRank;
  opts.lowrank_min_rows = 1;
  SinkhornSolution lr;
  {
    Stopwatch watch;
    lr = SolveSinkhornMasked(a, ma, b, mb, opts);
    pt.lowrank_sec = watch.ElapsedSeconds();
  }
  pt.rank = lr.rank_used;
  pt.lowrank_obj = lr.reg_value;
  pt.speedup = pt.lowrank_sec > 0.0 ? pt.dense_sec / pt.lowrank_sec : 0.0;
  pt.rel_gap = std::abs(lr.reg_value - pt.dense_obj) /
               (1.0 + std::abs(pt.dense_obj));

  // Determinism arm: the factored solve must be bit-identical at any
  // thread count (untimed).
  pt.bit_identical = true;
  for (const int threads : {2, 4}) {
    runtime::SetNumThreads(threads);
    const SinkhornSolution again = SolveSinkhornMasked(a, ma, b, mb, opts);
    pt.bit_identical = pt.bit_identical && SameLowRankSolution(lr, again);
  }
  runtime::SetNumThreads(0);
  return pt;
}

int WriteBenchJson(const std::string& path, const std::vector<SweepPoint>& pts,
                   bool quick, size_t d, double missing, double lambda,
                   int plan_topk) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::printf("bench-json: cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"schema\": \"scis-bench-sinkhorn-v1\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(out, "  \"dims\": %zu,\n", d);
  std::fprintf(out, "  \"missing_rate\": %.3f,\n", missing);
  std::fprintf(out, "  \"lambda\": %.3f,\n", lambda);
  std::fprintf(out, "  \"plan_topk\": %d,\n", plan_topk);
  std::fprintf(out, "  \"sweep\": [\n");
  for (size_t i = 0; i < pts.size(); ++i) {
    const SweepPoint& p = pts[i];
    std::fprintf(out,
                 "    {\"n\": %zu, \"rank\": %d, "
                 "\"dense_seconds\": %.4f, \"lowrank_seconds\": %.4f, "
                 "\"speedup_single_thread\": %.2f, "
                 "\"dense_objective\": %.6f, \"lowrank_objective\": %.6f, "
                 "\"rel_gap\": %.6f, "
                 "\"bit_identical_1_2_4_threads\": %s}%s\n",
                 p.n, p.rank, p.dense_sec, p.lowrank_sec, p.speedup,
                 p.dense_obj, p.lowrank_obj, p.rel_gap,
                 p.bit_identical ? "true" : "false",
                 i + 1 < pts.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("bench json written to %s (%zu points, mode=%s)\n", path.c_str(),
              pts.size(), quick ? "quick" : "full");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  long long plan_topk = 32, threads = 0;
  double missing = 0.2, lambda = 5.0;
  bool quick = false;
  std::string bench_json;
  FlagParser flags;
  flags.AddDouble("missing", &missing, "MCAR missing rate of the bench data");
  flags.AddDouble("lambda", &lambda, "entropic regularization weight");
  flags.AddInt("plan_topk", &plan_topk, "sparse-plan support per row");
  flags.AddBool("quick", &quick, "small sweep for CI smoke runs");
  flags.AddString("bench-json", &bench_json,
                  "write the machine-readable sweep to this path");
  bench::AddThreadsFlag(flags, &threads);
  bench::ObsSession obs("sinkhorn_scale");
  obs.AddFlags(flags);
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  bench::ApplyThreadsFlag(threads);
  obs.Start();
  obs.report().AddConfig("missing", missing);
  obs.report().AddConfig("lambda", lambda);
  obs.report().AddConfig("plan_topk", static_cast<int64_t>(plan_topk));

  const size_t d = 8;
  const std::vector<size_t> sweep =
      quick ? std::vector<size_t>{1000, 2000}
            : std::vector<size_t>{2000, 5000, 10000, 20000};
  std::vector<SweepPoint> points;
  std::printf("%8s %5s %10s %11s %8s %12s %12s %10s %6s\n", "n", "rank",
              "dense_s", "lowrank_s", "speedup", "dense_obj", "lowrank_obj",
              "rel_gap", "ident");
  for (const size_t n : sweep) {
    const SweepPoint pt =
        RunPoint(n, d, missing, lambda, static_cast<int>(plan_topk),
                 /*seed=*/1789 + n);
    std::printf("%8zu %5d %10.3f %11.3f %7.2fx %12.4f %12.4f %10.6f %6s\n",
                pt.n, pt.rank, pt.dense_sec, pt.lowrank_sec, pt.speedup,
                pt.dense_obj, pt.lowrank_obj, pt.rel_gap,
                pt.bit_identical ? "yes" : "NO");
    points.push_back(pt);
  }

  int rc = 0;
  if (!bench_json.empty()) {
    rc = WriteBenchJson(bench_json, points, quick, d, missing, lambda,
                        static_cast<int>(plan_topk));
  }
  return obs.Finish() || rc;
}
