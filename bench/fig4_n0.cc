// Figure 4: effect of the initial sample size n0 on SCIS-GAIN — RMSE,
// training time, and R_t. The paper's reading: each dataset has an
// accuracy-optimal n0, and smaller n0 inflates the Theorem-1 variance
// (1/n0 − 1/n), pushing n* (and so R_t) up.
#include "bench/bench_common.h"

using namespace scis;
using namespace scis::bench;

int main(int argc, char** argv) {
  double scale = 0.5;
  long long epochs = 20;
  std::string dataset = "Trial";
  long long threads;
  FlagParser flags;
  ObsSession obs("fig4_n0");
  AddThreadsFlag(flags, &threads);
  obs.AddFlags(flags);
  flags.AddDouble("scale", &scale, "row-count multiplier vs the paper");
  flags.AddInt("epochs", &epochs, "deep-model training epochs");
  flags.AddString("dataset", &dataset, "which Table-II dataset shape");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  ApplyThreadsFlag(threads);
  obs.Start();
  obs.report().AddConfig("scale", scale);
  obs.report().AddConfig("epochs", static_cast<int64_t>(epochs));
  obs.report().AddConfig("dataset", dataset);
  obs.report().AddConfig("threads",
                         static_cast<int64_t>(runtime::NumThreads()));

  SyntheticSpec spec;
  for (const SyntheticSpec& s : AllCovidSpecs(scale)) {
    if (s.name == dataset) spec = s;
  }
  if (spec.name.empty()) {
    std::printf("unknown dataset %s\n", dataset.c_str());
    return 1;
  }

  PreparedData prep = PrepareData(spec, 0.2, 0.0, 88);
  const size_t n = prep.train.num_rows();
  std::printf("=== Figure 4 — %s: sweep initial size n0 (N=%zu) ===\n",
              spec.name.c_str(), n);
  TablePrinter table(
      {"n0", "RMSE", "Time (s)", "R_t (%)", "n*", "SSE Time (s)"});
  for (size_t n0 : {125u, 250u, 500u, 1000u, 2000u}) {
    if (n0 >= n / 2) continue;
    ScisOptions opts = PaperScisOptions(spec, static_cast<int>(epochs));
    opts.initial_size = n0;
    auto gen = MakeGenerative("GAIN", 88);
    MethodResult r = RunScis(*gen, opts, prep);
    table.AddRow({StrFormat("%zu", n0), StrFormat("%.4f", r.rmse),
                  FormatSeconds(r.seconds), StrFormat("%.2f", r.sample_rate),
                  StrFormat("%zu", r.n_star),
                  FormatSeconds(r.sse_seconds)});
  }
  table.Print();
  return obs.Finish();
}
