// Table V: ablation of SCIS's modules on the small datasets —
//   GAIN            original adversarial training, full data
//   DIM-GAIN        MS-divergence training, full data (no SSE)
//   Fixed-DIM-GAIN  MS-divergence training on a fixed 10% sample
//   SCIS-GAIN       DIM + SSE (Algorithm 1)
#include "bench/bench_common.h"

using namespace scis;
using namespace scis::bench;

namespace {

void RunDataset(const SyntheticSpec& spec, int epochs, int repeats,
                bool run_dim_full) {
  std::printf("\n=== Table V — %s (%zu rows) ===\n", spec.name.c_str(),
              spec.rows);
  TablePrinter table({"Method", "RMSE (Bias)", "Time (s)", "R_t (%)"});
  {
    AggregateResult agg = Repeat(repeats, [&](uint64_t seed) {
      PreparedData prep = PrepareData(spec, 0.2, 0.0, seed);
      auto imp = MakeImputer("GAIN", epochs, seed);
      return RunPlain(**imp, prep);
    });
    table.AddRow(ResultRow("GAIN", agg, false));
  }
  const DimOptions dopts = PaperScisOptions(spec, epochs).dim;
  if (run_dim_full) {
    AggregateResult agg = Repeat(repeats, [&](uint64_t seed) {
      PreparedData prep = PrepareData(spec, 0.2, 0.0, seed);
      auto gen = MakeGenerative("GAIN", seed);
      return RunDim(*gen, dopts, prep);
    });
    table.AddRow(ResultRow("DIM-GAIN", agg, false));
  } else {
    table.AddRow(UnavailableRow("DIM-GAIN"));
  }
  {
    AggregateResult agg = Repeat(repeats, [&](uint64_t seed) {
      PreparedData prep = PrepareData(spec, 0.2, 0.0, seed);
      auto gen = MakeGenerative("GAIN", seed);
      return RunFixedDim(*gen, dopts, 0.10, prep);
    });
    table.AddRow(ResultRow("Fixed-DIM-GAIN", agg, true));
  }
  {
    AggregateResult agg = Repeat(repeats, [&](uint64_t seed) {
      PreparedData prep = PrepareData(spec, 0.2, 0.0, seed);
      auto gen = MakeGenerative("GAIN", seed);
      return RunScis(*gen, PaperScisOptions(spec, epochs), prep);
    });
    table.AddRow(ResultRow("SCIS-GAIN", agg, true));
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.5;
  long long epochs = 20;
  long long repeats = 1;
  long long threads;
  FlagParser flags;
  ObsSession obs("table5_ablation_small");
  AddThreadsFlag(flags, &threads);
  obs.AddFlags(flags);
  flags.AddDouble("scale", &scale, "row-count multiplier vs the paper");
  flags.AddInt("epochs", &epochs, "deep-model training epochs");
  flags.AddInt("repeats", &repeats, "random divisions averaged");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  ApplyThreadsFlag(threads);
  obs.Start();
  obs.report().AddConfig("scale", scale);
  obs.report().AddConfig("epochs", static_cast<int64_t>(epochs));
  obs.report().AddConfig("repeats", static_cast<int64_t>(repeats));
  obs.report().AddConfig("threads",
                         static_cast<int64_t>(runtime::NumThreads()));
  RunDataset(TrialSpec(scale), static_cast<int>(epochs),
             static_cast<int>(repeats), /*run_dim_full=*/true);
  RunDataset(EmergencySpec(scale), static_cast<int>(epochs),
             static_cast<int>(repeats), /*run_dim_full=*/true);
  RunDataset(ResponseSpec(scale * 0.1), static_cast<int>(epochs),
             static_cast<int>(repeats), /*run_dim_full=*/true);
  return obs.Finish();
}
