// Table III: performance comparison of imputation methods over Trial,
// Emergency, and Response (RMSE / training time / R_t).
//
// Method availability per dataset mirrors the paper's "-" pattern (methods
// that did not finish within 10^5 s on the authors' testbed are skipped at
// the corresponding scale here).
#include "bench/bench_common.h"

using namespace scis;
using namespace scis::bench;

namespace {

struct DatasetPlan {
  SyntheticSpec spec;
  std::vector<std::string> methods;  // plain baselines, paper order
};

void RunDataset(const DatasetPlan& plan, int epochs, int repeats) {
  std::printf("\n=== Table III — %s (%zu rows x %zu cols, %.2f%% missing) "
              "===\n",
              plan.spec.name.c_str(), plan.spec.rows, plan.spec.cols,
              100.0 * plan.spec.missing_rate);
  TablePrinter table({"Method", "RMSE (Bias)", "Time (s)", "R_t (%)"});
  const std::vector<std::string> all = KnownImputerNames();
  for (const std::string& name : all) {
    // Not rows of the paper's Table III.
    if (name == "Mean" || name == "Median" || name == "KNN" ||
        name == "XGBI") continue;
    const bool available =
        std::find(plan.methods.begin(), plan.methods.end(), name) !=
        plan.methods.end();
    if (!available) {
      if (name != "GINN" && name != "GAIN") {
        table.AddRow(UnavailableRow(name));
      }
    }
    if (available && !IsGenerativeName(name)) {
      AggregateResult agg = Repeat(repeats, [&](uint64_t seed) {
        PreparedData prep = PrepareData(plan.spec, 0.2, 0.0, seed);
        auto imp = MakeImputer(name, epochs, seed);
        return RunPlain(**imp, prep);
      });
      table.AddRow(ResultRow(name, agg, /*show_rt=*/false));
    }
    // GAN-based methods get a plain row and a SCIS row.
    if (name == "GINN" || name == "GAIN") {
      if (available) {
        AggregateResult agg = Repeat(repeats, [&](uint64_t seed) {
          PreparedData prep = PrepareData(plan.spec, 0.2, 0.0, seed);
          auto imp = MakeImputer(name, epochs, seed);
          return RunPlain(**imp, prep);
        });
        table.AddRow(ResultRow(name, agg, /*show_rt=*/false));
      } else {
        table.AddRow(UnavailableRow(name));
      }
      AggregateResult agg = Repeat(repeats, [&](uint64_t seed) {
        PreparedData prep = PrepareData(plan.spec, 0.2, 0.0, seed);
        auto gen = MakeGenerative(name, seed);
        return RunScis(*gen, PaperScisOptions(plan.spec, epochs), prep);
      });
      table.AddRow(ResultRow("SCIS-" + name, agg, /*show_rt=*/true));
    }
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.5;
  long long epochs = 20;
  long long repeats = 1;
  long long threads;
  FlagParser flags;
  ObsSession obs("table3_small");
  AddThreadsFlag(flags, &threads);
  obs.AddFlags(flags);
  flags.AddDouble("scale", &scale, "row-count multiplier vs the paper");
  flags.AddInt("epochs", &epochs, "deep-model training epochs");
  flags.AddInt("repeats", &repeats, "random divisions averaged (paper: 5)");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  ApplyThreadsFlag(threads);
  obs.Start();
  obs.report().AddConfig("scale", scale);
  obs.report().AddConfig("epochs", static_cast<int64_t>(epochs));
  obs.report().AddConfig("repeats", static_cast<int64_t>(repeats));
  obs.report().AddConfig("threads",
                         static_cast<int64_t>(runtime::NumThreads()));

  // Paper availability pattern (Table III): "-" entries are methods that
  // exceeded 10^5 s on that dataset.
  std::vector<DatasetPlan> plans = {
      {TrialSpec(scale),
       {"MissF", "Baran", "MICE", "DataWig", "RRSI", "MIDAE", "VAEI",
        "MIWAE", "EDDI", "HIVAE", "GINN", "GAIN"}},
      {EmergencySpec(scale),
       {"DataWig", "RRSI", "MIDAE", "VAEI", "EDDI", "HIVAE", "GINN",
        "GAIN"}},
      {ResponseSpec(scale * 0.1), {"HIVAE", "GAIN"}},
  };
  for (const DatasetPlan& plan : plans) {
    RunDataset(plan, static_cast<int>(epochs), static_cast<int>(repeats));
  }
  return obs.Finish();
}
