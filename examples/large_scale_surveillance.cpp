// Large-scale scenario from the paper's introduction: a COVID-19 case
// surveillance table (paper: 22.5M rows x 7 clinical/symptom features,
// 47.6% missing) where full-data GAN training is infeasible and SCIS's
// sample-size estimation is the point.
//
// This example trains GAIN both ways on a Surveil-shaped dataset —
// (a) conventional full-data adversarial training, and (b) SCIS — and
// contrasts wall-clock time, training sample rate R_t, and RMSE, i.e. a
// single-dataset preview of Table IV.
//
// Run with a larger --scale to push the contrast further.
#include <cstdio>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "core/scis.h"
#include "data/covid_synth.h"
#include "data/missingness.h"
#include "data/normalizer.h"
#include "eval/metrics.h"
#include "models/gain_imputer.h"

using namespace scis;

int main(int argc, char** argv) {
  double scale = 0.002;  // 22.5M * 0.002 = ~45k rows
  long long epochs = 10;
  long long sinkhorn_rank = SinkhornOptions::kAutoRank;
  FlagParser flags;
  flags.AddDouble("scale", &scale, "row-count multiplier vs the paper");
  flags.AddInt("epochs", &epochs, "training epochs for both arms");
  flags.AddInt("sinkhorn_rank", &sinkhorn_rank,
               "Sinkhorn rank for DIM (0 dense, -1 auto, >0 forced); at "
               "large --scale the auto low-rank path keeps DIM sub-quadratic");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }

  SyntheticSpec spec = SurveilSpec(scale);
  LabeledDataset gen = GenerateSynthetic(spec);
  std::printf("Surveil-shaped dataset: %zu rows x %zu cols, %.1f%% missing\n",
              gen.incomplete.num_rows(), gen.incomplete.num_cols(),
              100.0 * gen.incomplete.MissingRate());

  Rng rng(11);
  HoldOut holdout = MakeHoldOut(gen.incomplete, 0.2, rng);
  MinMaxNormalizer norm;
  Dataset train = norm.FitTransform(holdout.train);
  Matrix truth(train.num_rows(), train.num_cols());
  for (size_t i = 0; i < truth.rows(); ++i)
    for (size_t j = 0; j < truth.cols(); ++j)
      if (holdout.eval_mask(i, j) == 1.0)
        truth(i, j) = (holdout.truth(i, j) - norm.lo()[j]) /
                      (norm.hi()[j] - norm.lo()[j]);

  // --- arm 1: conventional GAIN over the full dataset ---
  {
    GainImputerOptions o;
    o.deep.epochs = static_cast<int>(epochs);
    GainImputer gain(o);
    Stopwatch watch;
    if (!gain.Fit(train).ok()) return 1;
    const double secs = watch.ElapsedSeconds();
    const double rmse = MaskedRmse(gain.Impute(train), truth,
                                   holdout.eval_mask);
    std::printf("GAIN       rmse=%.4f  time=%7.2fs  R_t=100.00%%\n", rmse,
                secs);
  }

  // --- arm 2: SCIS-GAIN (DIM + SSE) ---
  {
    GainImputerOptions o;
    o.deep.epochs = 1;
    GainImputer gain(o);
    ScisOptions opts;
    opts.validation_size = 1000;
    // §VI: n0 = 20,000 for Surveil at full size; keep the same fraction.
    opts.initial_size = std::max<size_t>(
        500, static_cast<size_t>(20000.0 * scale * 22507139.0 / 22507139.0));
    opts.dim.epochs = static_cast<int>(epochs);
    opts.dim.lambda = 130.0;
    opts.dim.sinkhorn_rank = static_cast<int>(sinkhorn_rank);
    opts.sse.epsilon = 0.001;
    Scis scis(opts);
    Stopwatch watch;
    Result<Matrix> imputed = scis.Run(gain, train);
    if (!imputed.ok()) {
      std::printf("SCIS failed: %s\n", imputed.status().ToString().c_str());
      return 1;
    }
    const double secs = watch.ElapsedSeconds();
    const double rmse = MaskedRmse(*imputed, truth, holdout.eval_mask);
    const ScisReport& rep = scis.report();
    std::printf(
        "SCIS-GAIN  rmse=%.4f  time=%7.2fs  R_t=%6.2f%%  (n*=%zu, SSE "
        "%.2fs)\n",
        rmse, secs, 100.0 * rep.training_sample_rate, rep.n_star,
        rep.sse_seconds);
  }
  return 0;
}
