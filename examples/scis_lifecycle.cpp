// scis_lifecycle — end-to-end continuous-learning loopback demo.
//
//   scis_lifecycle [--workdir DIR] [--report-out report.json]
//
// Runs the full SSE-driven lifecycle against a live serving fleet, three
// times (1, 2, and 4 worker threads), and requires every run to agree
// bit-for-bit:
//
//   1. Train a GAIN generator offline, save a v3 checkpoint, serve it
//      behind the epoll event loop (2 shards).
//   2. Feed baseline traffic through a client; the DriftController check
//      finds P(D(θ_n, θ_N) ≤ ε) ≥ 1−α — no drift, no retrain.
//   3. Feed drifted traffic (shifted value range, heavier missingness).
//      The next check drops the confidence below 1−α, estimates the
//      SSE minimum size n*, retrains the generator on the most recent n*
//      stored rows with the DIM loop, and publishes the new checkpoint —
//      the hot-swap lands while 16 concurrent connections are imputing
//      (launched from inside the publish step), with zero dropped or
//      blocked requests.
//   4. A post-swap probe batch is served by the retrained model; a final
//      check sees the confidence recover.
//
// Printed per run: confidence at each check, n*, swap generation, tap
// drops, and FNV-1a digests of the store replay and the post-swap served
// bytes. The three runs must produce identical digests, n*, and
// confidences; exit code 1 otherwise (ci.sh asserts on this).
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "core/dim.h"
#include "data/normalizer.h"
#include "lifecycle/lifecycle.h"
#include "models/gain_imputer.h"
#include "nn/serialize.h"
#include "obs/run_report.h"
#include "runtime/runtime.h"
#include "serve/client.h"
#include "serve/server.h"
#include "tensor/rng.h"

using namespace scis;

namespace {

constexpr size_t kCols = 6;
constexpr size_t kTrainRows = 96;
constexpr int kBaselineBatches = 5;
constexpr int kDriftBatches = 24;
constexpr size_t kBatchRows = 16;
constexpr int kHammerConns = 16;
constexpr int kHammerBatchesPerConn = 1;

// Raw traffic rows: column j lives in [j, j + 2); NaN = missing. `shift`
// moves the distribution outside the training range (the injected drift).
Matrix TrafficRows(Rng& rng, size_t n, double missing_rate, double shift) {
  Matrix m(n, kCols);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < kCols; ++j) {
      const double lo = static_cast<double>(j) + shift;
      const double v = rng.Uniform(lo, lo + 2.0);
      m(i, j) = rng.Bernoulli(missing_rate)
                    ? std::numeric_limits<double>::quiet_NaN()
                    : v;
    }
  }
  return m;
}

Dataset RawToDataset(const Matrix& raw) {
  Matrix values = raw;
  Matrix mask(raw.rows(), raw.cols());
  for (size_t k = 0; k < values.size(); ++k) {
    if (std::isnan(values.data()[k])) {
      values.data()[k] = 0.0;
    } else {
      mask.data()[k] = 1.0;
    }
  }
  return Dataset("lifecycle_demo", std::move(values), std::move(mask),
                 NumericColumns(raw.cols()));
}

CheckpointMeta MakeMeta(const Dataset& raw, const MinMaxNormalizer& norm) {
  CheckpointMeta meta;
  meta.model = "GAIN";
  for (const ColumnMeta& c : raw.columns()) {
    CheckpointColumn col;
    col.name = c.name;
    col.kind = static_cast<int>(c.kind);
    col.num_categories = c.num_categories;
    meta.columns.push_back(std::move(col));
  }
  meta.norm_lo = norm.lo();
  meta.norm_hi = norm.hi();
  return meta;
}

uint64_t FnvMix(uint64_t h, const Matrix& m) {
  for (size_t k = 0; k < m.size(); ++k) {
    uint64_t bits;
    std::memcpy(&bits, &m.data()[k], sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xFFu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

struct LoopRun {
  double conf_baseline = -1.0, conf_drift = -1.0, conf_after = -1.0;
  size_t n_star = 0;
  uint64_t generation = 0;
  uint64_t dropped = 0;
  uint64_t hammer_failures = 0;
  uint64_t store_digest = 0;
  uint64_t served_digest = 0;
  bool ok = false;
};

LoopRun RunLoop(int threads, const std::string& dir) {
  LoopRun run;
  runtime::SetNumThreads(threads);
  std::filesystem::create_directories(dir);

  // Offline training, exactly as scis_impute would do it.
  Rng rng(11);
  const Matrix raw0 = TrafficRows(rng, kTrainRows, 0.25, 0.0);
  const Dataset raw_ds = RawToDataset(raw0);
  MinMaxNormalizer norm;
  const Dataset train = norm.FitTransform(raw_ds);
  GainImputerOptions gopts;
  gopts.deep.seed = 5;
  GainImputer gain(gopts);
  DimOptions dopts;
  dopts.epochs = 6;
  dopts.seed = 13;
  DimTrainer offline(dopts);
  if (Status st = offline.Train(gain, train); !st.ok()) {
    std::printf("offline train: %s\n", st.ToString().c_str());
    return run;
  }
  const std::string ckpt_path = dir + "/model.bin";
  if (Status st = SaveCheckpointBinary(gain.generator_params(),
                                       MakeMeta(raw_ds, norm), ckpt_path);
      !st.ok()) {
    std::printf("save: %s\n", st.ToString().c_str());
    return run;
  }

  Result<std::shared_ptr<const serve::ImputationEngine>> engine =
      serve::ImputationEngine::Load(ckpt_path);
  if (!engine.ok()) {
    std::printf("load: %s\n", engine.status().ToString().c_str());
    return run;
  }
  Result<Checkpoint> ckpt = LoadCheckpoint(ckpt_path);
  if (!ckpt.ok()) {
    std::printf("ckpt: %s\n", ckpt.status().ToString().c_str());
    return run;
  }

  // The swap callback launches the 16-connection hammer just before the
  // fleet moves to the new engine, so the swap lands under live traffic.
  auto server_holder = std::make_shared<serve::ImputationServer*>(nullptr);
  std::vector<std::thread> hammer;
  std::atomic<uint64_t> hammer_failures{0};
  Rng hammer_rng(77);
  const Matrix hammer_batch = TrafficRows(hammer_rng, 1, 0.5, 0.0);
  auto join_hammer = [&hammer] {
    for (std::thread& t : hammer) t.join();
    hammer.clear();
  };
  auto start_hammer = [&] {
    auto holder = server_holder;
    for (int c = 0; c < kHammerConns; ++c) {
      hammer.emplace_back([holder, &hammer_batch, &hammer_failures] {
        Result<std::unique_ptr<serve::ImputationClient>> cl =
            serve::ImputationClient::Connect("127.0.0.1",
                                             (*holder)->port());
        if (!cl.ok()) {
          hammer_failures.fetch_add(kHammerBatchesPerConn);
          return;
        }
        for (int b = 0; b < kHammerBatchesPerConn; ++b) {
          if (!(*cl)->Impute(hammer_batch).ok()) hammer_failures.fetch_add(1);
        }
      });
    }
  };

  lifecycle::LifecycleOptions lopts;
  lopts.dir = dir;
  lopts.drift.min_rows = 64;
  lopts.drift.reservoir_rows = 96;
  lopts.drift.initial_trained_rows = kTrainRows;
  lopts.drift.retrain_cap_rows = 4096;
  lopts.drift.seed = 97;
  lopts.drift.sse.epsilon = 0.001;
  lopts.drift.sse.alpha = 0.05;
  lopts.drift.sse.eta_scale = 1e-5;
  lopts.drift.sse.curvature_batches = 4;
  lopts.drift.sse.curvature_batch_size = 64;
  lopts.drift.sse.seed = 37;
  lopts.drift.sse.k = 40;
  lopts.drift.retrain.epochs = 4;
  lopts.drift.retrain.seed = 29;
  Result<std::unique_ptr<lifecycle::LifecycleManager>> mgr =
      lifecycle::LifecycleManager::Create(
          *ckpt,
          [&start_hammer, server_holder](
              std::shared_ptr<const serve::ImputationEngine> next) {
            start_hammer();
            return (*server_holder)->HotSwap(std::move(next));
          },
          lopts);
  if (!mgr.ok()) {
    std::printf("lifecycle: %s\n", mgr.status().ToString().c_str());
    return run;
  }

  serve::ServerOptions sopts;
  sopts.shards = 2;
  sopts.sample_hook = (*mgr)->SampleHook();
  serve::ImputationServer server(std::move(*engine), sopts);
  if (Status st = server.Start(); !st.ok()) {
    std::printf("server: %s\n", st.ToString().c_str());
    return run;
  }
  *server_holder = &server;

  Result<std::unique_ptr<serve::ImputationClient>> feeder =
      serve::ImputationClient::Connect("127.0.0.1", server.port());
  if (!feeder.ok()) {
    std::printf("connect: %s\n", feeder.status().ToString().c_str());
    return run;
  }

  bool traffic_ok = true;
  // Phase 1: baseline traffic, then a check that must NOT drift.
  for (int b = 0; b < kBaselineBatches; ++b) {
    traffic_ok &=
        (*feeder)->Impute(TrafficRows(rng, kBatchRows, 0.25, 0.0)).ok();
  }
  Result<lifecycle::DriftController::CheckOutcome> c1 = (*mgr)->RunCheck();
  if (!c1.ok() || !traffic_ok) {
    std::printf("check1: %s\n", c1.ok() ? "traffic failed"
                                        : c1.status().ToString().c_str());
    return run;
  }
  run.conf_baseline = c1->confidence;

  // Phase 2: injected drift — values shifted past the training range,
  // heavier missingness — then the check that must retrain and swap.
  for (int b = 0; b < kDriftBatches; ++b) {
    traffic_ok &=
        (*feeder)->Impute(TrafficRows(rng, kBatchRows, 0.45, 8.0)).ok();
  }
  Result<lifecycle::DriftController::CheckOutcome> c2 = (*mgr)->RunCheck();
  join_hammer();
  if (!c2.ok() || !traffic_ok) {
    std::printf("check2: %s\n", c2.ok() ? "traffic failed"
                                        : c2.status().ToString().c_str());
    return run;
  }
  run.conf_drift = c2->confidence;
  run.n_star = c2->n_star;
  run.generation = (*mgr)->publisher().generation();
  run.hammer_failures = hammer_failures.load();

  // Phase 3: the retrained model serves a fixed probe; confidence recovers.
  Rng probe_rng(1234);
  const Matrix probe = TrafficRows(probe_rng, 8, 0.5, 8.0);
  Result<Matrix> served = (*feeder)->Impute(probe);
  if (!served.ok()) {
    std::printf("probe: %s\n", served.status().ToString().c_str());
    return run;
  }
  run.served_digest = FnvMix(14695981039346656037ull, *served);
  Result<lifecycle::DriftController::CheckOutcome> c3 = (*mgr)->RunCheck();
  join_hammer();  // a re-drifted check would have swapped (and hammered) again
  if (!c3.ok()) {
    std::printf("check3: %s\n", c3.status().ToString().c_str());
    return run;
  }
  run.conf_after = c3->confidence;

  run.dropped = (*mgr)->tap().dropped_rows();
  uint64_t digest = 14695981039346656037ull;
  Status replay = (*mgr)->store().Replay(
      [&](const Matrix& rec) { digest = FnvMix(digest, rec); });
  if (!replay.ok()) {
    std::printf("replay: %s\n", replay.ToString().c_str());
    return run;
  }
  run.store_digest = digest;

  (*mgr)->Stop();
  server.Shutdown();
  *server_holder = nullptr;

  run.ok = !c1->drifted && c2->drifted && c2->retrained && c2->published &&
           run.generation == 1 && run.dropped == 0 &&
           run.hammer_failures == 0 && !c3->drifted && traffic_ok;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workdir, report_out;
  FlagParser flags;
  flags.AddString("workdir", &workdir,
                  "scratch directory (default: a fresh temp dir)");
  flags.AddString("report-out", &report_out, "write a JSON run report");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  if (workdir.empty()) {
    workdir = (std::filesystem::temp_directory_path() /
               ("scis_lifecycle." + std::to_string(::getpid())))
                  .string();
  }

  const int kThreads[] = {1, 2, 4};
  std::vector<LoopRun> runs;
  for (int t : kThreads) {
    const std::string dir = workdir + "/t" + std::to_string(t);
    LoopRun run = RunLoop(t, dir);
    std::printf(
        "threads=%d  conf=[%.2f -> %.2f -> %.2f]  n*=%zu  gen=%llu  "
        "dropped=%llu  store=%016llx  served=%016llx  %s\n",
        t, run.conf_baseline, run.conf_drift, run.conf_after, run.n_star,
        static_cast<unsigned long long>(run.generation),
        static_cast<unsigned long long>(run.dropped),
        static_cast<unsigned long long>(run.store_digest),
        static_cast<unsigned long long>(run.served_digest),
        run.ok ? "ok" : "FAILED");
    if (!run.ok) return 1;
    runs.push_back(run);
  }
  runtime::SetNumThreads(0);

  bool identical = true;
  for (size_t i = 1; i < runs.size(); ++i) {
    identical &= runs[i].store_digest == runs[0].store_digest &&
                 runs[i].served_digest == runs[0].served_digest &&
                 runs[i].n_star == runs[0].n_star &&
                 runs[i].conf_baseline == runs[0].conf_baseline &&
                 runs[i].conf_drift == runs[0].conf_drift &&
                 runs[i].conf_after == runs[0].conf_after;
  }
  std::printf("lifecycle loop: %s (drift detected, retrained at n*=%zu, "
              "hot-swapped gen %llu under %d connections, 0 drops, "
              "bit-identical at 1/2/4 threads)\n",
              identical ? "OK" : "MISMATCH ACROSS THREAD COUNTS",
              runs[0].n_star,
              static_cast<unsigned long long>(runs[0].generation),
              kHammerConns);

  if (!report_out.empty()) {
    obs::RunReport report("scis_lifecycle");
    report.AddConfig("epsilon", 0.001);
    report.AddConfig("alpha", 0.05);
    report.AddConfig("n_star", static_cast<int64_t>(runs[0].n_star));
    report.AddConfig("generation",
                     static_cast<int64_t>(runs[0].generation));
    report.AddConfig("bit_identical_1_2_4_threads", identical);
    if (Status st = report.Write(report_out); !st.ok()) {
      std::printf("report: %s\n", st.ToString().c_str());
    }
  }
  return identical ? 0 : 1;
}
