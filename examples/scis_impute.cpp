// scis_impute — command-line imputation of a CSV file.
//
//   scis_impute --input data.csv --output imputed.csv \
//               [--method SCIS-GAIN|GAIN|GINN|MICE|MissF|...] \
//               [--epochs 30] [--epsilon 0.001] [--n0 500] [--seed 7] \
//               [--threads 0] [--save_params model.ckpt]
//
// Missing cells are empty fields / NA / nan / null. The pipeline is the
// library's canonical one: min-max normalize on observed cells, fit the
// chosen imputer (SCIS-accelerated for the GAN methods), apply Eq. 1, and
// write the completed table back in original units.
//
// --save_params writes a self-contained v2 checkpoint (generator weights +
// normalizer stats + column schema) that scis_serve can load directly.
// --save_index additionally writes a mask-aware ANN index over the
// normalized training rows; scis_serve --index loads it for
// retrieval-augmented imputation.
#include <cstdio>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "core/scis.h"
#include "data/csv.h"
#include "data/normalizer.h"
#include "eval/experiment.h"
#include "index/ann_index.h"
#include "nn/serialize.h"
#include "models/gain_imputer.h"
#include "runtime/runtime.h"

using namespace scis;

namespace {

// Packages everything serving needs alongside the weights: the model tag,
// the column schema, and the normalizer stats fitted on this input.
CheckpointMeta MakeMeta(const std::string& model, const Dataset& raw,
                        const MinMaxNormalizer& norm) {
  CheckpointMeta meta;
  meta.model = model;
  for (const ColumnMeta& c : raw.columns()) {
    CheckpointColumn col;
    col.name = c.name;
    col.kind = static_cast<int>(c.kind);
    col.num_categories = c.num_categories;
    meta.columns.push_back(std::move(col));
  }
  meta.norm_lo = norm.lo();
  meta.norm_hi = norm.hi();
  return meta;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input, output, method = "SCIS-GAIN", save_params, save_index;
  std::string save_params_bin;
  long long epochs = 30;
  long long n0 = 500;
  double epsilon = 0.001;
  long long seed = 7;
  long long threads = 0;
  long long sinkhorn_rank = SinkhornOptions::kAutoRank;
  FlagParser flags;
  flags.AddString("input", &input, "incomplete CSV (header row required)");
  flags.AddString("output", &output, "where to write the imputed CSV");
  flags.AddString("method", &method,
                  "SCIS-GAIN, SCIS-GINN, or any baseline name");
  flags.AddInt("epochs", &epochs, "training epochs for deep methods");
  flags.AddInt("n0", &n0, "SCIS initial sample size");
  flags.AddDouble("epsilon", &epsilon, "SCIS user-tolerated error bound");
  flags.AddInt("seed", &seed, "random seed");
  flags.AddInt("threads", &threads,
               "worker threads (0 = SCIS_NUM_THREADS or hardware)");
  flags.AddInt("sinkhorn_rank", &sinkhorn_rank,
               "Sinkhorn solver rank: 0 = exact dense, -1 = auto "
               "(low-rank above the size threshold), >0 = force rank");
  flags.AddString("save_params", &save_params,
                  "optional path to checkpoint the trained generator");
  flags.AddString("save_params_bin", &save_params_bin,
                  "optional path for a binary v3 checkpoint (mmap-able; "
                  "scis_serve loads it zero-copy)");
  flags.AddString("save_index", &save_index,
                  "optional path for an ANN index over the normalized "
                  "training rows (scis_serve --index)");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  if (threads > 0) runtime::SetNumThreads(static_cast<int>(threads));
  if (input.empty() || output.empty()) {
    std::printf("--input and --output are required (see --help)\n");
    return 1;
  }

  Result<Dataset> loaded = ReadCsvDataset(input, "input");
  if (!loaded.ok()) {
    std::printf("read failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Dataset raw = std::move(loaded).value();
  std::printf("%s: %zu rows x %zu cols, %.2f%% missing\n", input.c_str(),
              raw.num_rows(), raw.num_cols(), 100.0 * raw.MissingRate());
  if (raw.MissingRate() == 0.0) {
    std::printf("nothing to impute; copying through\n");
    return WriteCsvDataset(raw, output).ok() ? 0 : 1;
  }

  MinMaxNormalizer norm;
  Dataset train = norm.FitTransform(raw);

  Matrix imputed_norm;
  Stopwatch watch;
  const bool use_scis =
      method == "SCIS-GAIN" || method == "SCIS-GINN";
  if (use_scis) {
    const std::string base = method.substr(5);
    Result<std::unique_ptr<GenerativeImputer>> gen_res =
        MakeGenerativeImputer(base, static_cast<uint64_t>(seed));
    if (!gen_res.ok()) {
      std::printf("%s\n", gen_res.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<GenerativeImputer> gen = std::move(gen_res).value();
    ScisOptions opts;
    opts.validation_size = std::min<size_t>(1000, raw.num_rows() / 4);
    opts.initial_size = static_cast<size_t>(n0);
    opts.dim.epochs = static_cast<int>(epochs);
    opts.dim.lambda = 130.0;
    opts.dim.sinkhorn_rank = static_cast<int>(sinkhorn_rank);
    opts.sse.epsilon = epsilon;
    Scis scis(opts);
    Result<Matrix> res = scis.Run(*gen, train);
    if (!res.ok()) {
      std::printf("SCIS failed: %s\n", res.status().ToString().c_str());
      return 1;
    }
    imputed_norm = std::move(res).value();
    std::printf("SCIS: n* = %zu (R_t = %.2f%%), SSE %.2fs, total %.2fs\n",
                scis.report().n_star,
                100.0 * scis.report().training_sample_rate,
                scis.report().sse_seconds, scis.report().total_seconds);
    if (!save_params.empty()) {
      Status st = SaveCheckpoint(gen->generator_params(),
                                 MakeMeta(base, raw, norm), save_params);
      std::printf("checkpoint %s: %s\n", save_params.c_str(),
                  st.ToString().c_str());
    }
    if (!save_params_bin.empty()) {
      Status st = SaveCheckpointBinary(gen->generator_params(),
                                       MakeMeta(base, raw, norm),
                                       save_params_bin);
      std::printf("binary checkpoint %s: %s\n", save_params_bin.c_str(),
                  st.ToString().c_str());
    }
  } else {
    Result<std::unique_ptr<Imputer>> imp =
        MakeImputer(method, static_cast<int>(epochs),
                    static_cast<uint64_t>(seed));
    if (!imp.ok()) {
      std::printf("%s\n", imp.status().ToString().c_str());
      return 1;
    }
    if (Status st = (*imp)->Fit(train); !st.ok()) {
      std::printf("fit failed: %s\n", st.ToString().c_str());
      return 1;
    }
    imputed_norm = (*imp)->Impute(train);
    if (!save_params.empty() || !save_params_bin.empty()) {
      // Only generator-backed baselines (GAIN, GINN) carry parameters a
      // checkpoint can capture.
      auto* gen = dynamic_cast<GenerativeImputer*>(imp->get());
      if (gen == nullptr) {
        std::printf("checkpoint: skipped (%s has no generator)\n",
                    method.c_str());
      } else {
        if (!save_params.empty()) {
          Status st = SaveCheckpoint(gen->generator_params(),
                                     MakeMeta(gen->name(), raw, norm),
                                     save_params);
          std::printf("checkpoint %s: %s\n", save_params.c_str(),
                      st.ToString().c_str());
        }
        if (!save_params_bin.empty()) {
          Status st = SaveCheckpointBinary(gen->generator_params(),
                                           MakeMeta(gen->name(), raw, norm),
                                           save_params_bin);
          std::printf("binary checkpoint %s: %s\n", save_params_bin.c_str(),
                      st.ToString().c_str());
        }
      }
    }
  }
  std::printf("imputation took %.2fs\n", watch.ElapsedSeconds());

  if (!save_index.empty()) {
    const index::AnnIndex idx =
        index::AnnIndex::Build(train.values(), train.mask(), {});
    Status st = idx.Save(save_index);
    std::printf("index %s: %s (%zu rows, %zu nodes, depth %zu)\n",
                save_index.c_str(), st.ToString().c_str(), idx.num_rows(),
                idx.num_nodes(), idx.depth());
  }

  // Back to original units; observed cells keep their exact input values.
  Matrix imputed = norm.InverseTransform(imputed_norm);
  for (size_t i = 0; i < raw.num_rows(); ++i) {
    for (size_t j = 0; j < raw.num_cols(); ++j) {
      if (raw.IsObserved(i, j)) imputed(i, j) = raw.values()(i, j);
    }
  }
  Dataset out = Dataset::Complete("imputed", std::move(imputed),
                                  raw.columns());
  if (Status st = WriteCsvDataset(out, output); !st.ok()) {
    std::printf("write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", output.c_str());
  return 0;
}
