// Survey example: run every implemented imputation family on one dataset
// and print a Table-III-style comparison, plus a retrieval-augmented
// serving arm (GAIN generator + ANN index over the training rows, blended
// through the serving engine). Useful as a template for benchmarking your
// own data via ReadCsvDataset.
#include <cmath>
#include <cstdio>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "eval/experiment.h"
#include "eval/table.h"
#include "index/ann_index.h"
#include "serve/engine.h"

using namespace scis;

int main(int argc, char** argv) {
  double scale = 0.15;
  long long epochs = 10;
  std::string dataset = "Trial";
  FlagParser flags;
  flags.AddDouble("scale", &scale, "row-count multiplier vs the paper");
  flags.AddInt("epochs", &epochs, "deep-model training epochs");
  flags.AddString("dataset", &dataset,
                  "Trial|Emergency|Response|Search|Weather|Surveil");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }

  SyntheticSpec spec;
  for (const SyntheticSpec& s : AllCovidSpecs(scale)) {
    if (s.name == dataset) spec = s;
  }
  if (spec.name.empty()) {
    std::printf("unknown dataset %s\n", dataset.c_str());
    return 1;
  }

  PreparedData prep = PrepareData(spec, 0.2, 0.0, 42);
  std::printf("%s: %zu rows x %zu cols, %.1f%% missing after hold-out\n\n",
              spec.name.c_str(), prep.train.num_rows(),
              prep.train.num_cols(), 100.0 * prep.train.MissingRate());

  TablePrinter table({"Method", "RMSE", "Time (s)", "R_t (%)"});
  for (const std::string& name : KnownImputerNames()) {
    auto imp = MakeImputer(name, static_cast<int>(epochs), 42);
    if (!imp.ok()) continue;
    MethodResult r = RunPlain(**imp, prep);
    table.AddRow({r.method, StrFormat("%.4f", r.rmse),
                  FormatSeconds(r.seconds),
                  StrFormat("%.1f", r.sample_rate)});
  }
  // SCIS on top of the GAN-based models.
  for (const std::string& name : {std::string("GINN"), std::string("GAIN")}) {
    auto imp = MakeImputer(name, 1, 42);
    if (!imp.ok()) continue;
    auto* gen = dynamic_cast<GenerativeImputer*>(imp->get());
    ScisOptions opts;
    opts.validation_size = 300;
    opts.initial_size = 400;
    opts.dim.epochs = static_cast<int>(epochs);
    opts.dim.lambda = 130.0;
    opts.sse.epsilon = 0.001;
    MethodResult r = RunScis(*gen, opts, prep);
    table.AddRow({r.method, StrFormat("%.4f", r.rmse),
                  FormatSeconds(r.seconds),
                  StrFormat("%.1f", r.sample_rate)});
  }

  // Retrieval-augmented serving: train a plain GAIN generator, wrap it in
  // the serving engine together with an ANN index over the training rows,
  // and impute through the engine. PreparedData is already normalized, so
  // an identity normalizer (lo 0, hi 1) lets the engine consume its rows
  // directly; missing cells are NaN-coded as on the wire.
  do {
    auto imp = MakeImputer("GAIN", static_cast<int>(epochs), 42);
    if (!imp.ok()) break;
    Stopwatch watch;
    if (!(*imp)->Fit(prep.train).ok()) break;
    auto* gen = dynamic_cast<GenerativeImputer*>(imp->get());
    const ParamStore& store = gen->generator_params();

    const size_t d = prep.train.num_cols();
    Checkpoint ckpt;
    ckpt.version = 2;
    ckpt.meta.model = "GAIN";
    for (const ColumnMeta& c : prep.train.columns()) {
      ckpt.meta.columns.push_back(
          {c.name, static_cast<int>(c.kind), c.num_categories});
    }
    ckpt.meta.norm_lo.assign(d, 0.0);
    ckpt.meta.norm_hi.assign(d, 1.0);
    for (size_t id = 0; id < store.size(); ++id) {
      ckpt.params.push_back({store.name(id), store.value(id)});
    }

    serve::RetrievalOptions retrieval;
    auto engine = serve::ImputationEngine::FromCheckpoint(
        ckpt,
        index::AnnIndex::Build(prep.train.values(), prep.train.mask(), {}),
        retrieval);
    if (!engine.ok()) {
      std::printf("retrieval arm: %s\n", engine.status().ToString().c_str());
      break;
    }
    Matrix request = prep.train.values();
    for (size_t i = 0; i < request.rows(); ++i) {
      for (size_t j = 0; j < d; ++j) {
        if (!prep.train.IsObserved(i, j)) request(i, j) = std::nan("");
      }
    }
    Result<Matrix> served = (*engine)->ImputeBatch(request);
    if (!served.ok()) {
      std::printf("retrieval arm: %s\n", served.status().ToString().c_str());
      break;
    }
    table.AddRow({"GAIN+Retrieval",
                  StrFormat("%.4f",
                            MaskedRmse(*served, prep.truth, prep.eval_mask)),
                  FormatSeconds(watch.ElapsedSeconds()),
                  StrFormat("%.1f", 100.0)});
  } while (false);

  table.Print();
  return 0;
}
