// Survey example: run every implemented imputation family on one dataset
// and print a Table-III-style comparison. Useful as a template for
// benchmarking your own data via ReadCsvDataset.
#include <cstdio>

#include "common/flags.h"
#include "common/string_util.h"
#include "eval/experiment.h"
#include "eval/table.h"

using namespace scis;

int main(int argc, char** argv) {
  double scale = 0.15;
  long long epochs = 10;
  std::string dataset = "Trial";
  FlagParser flags;
  flags.AddDouble("scale", &scale, "row-count multiplier vs the paper");
  flags.AddInt("epochs", &epochs, "deep-model training epochs");
  flags.AddString("dataset", &dataset,
                  "Trial|Emergency|Response|Search|Weather|Surveil");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }

  SyntheticSpec spec;
  for (const SyntheticSpec& s : AllCovidSpecs(scale)) {
    if (s.name == dataset) spec = s;
  }
  if (spec.name.empty()) {
    std::printf("unknown dataset %s\n", dataset.c_str());
    return 1;
  }

  PreparedData prep = PrepareData(spec, 0.2, 0.0, 42);
  std::printf("%s: %zu rows x %zu cols, %.1f%% missing after hold-out\n\n",
              spec.name.c_str(), prep.train.num_rows(),
              prep.train.num_cols(), 100.0 * prep.train.MissingRate());

  TablePrinter table({"Method", "RMSE", "Time (s)", "R_t (%)"});
  for (const std::string& name : KnownImputerNames()) {
    auto imp = MakeImputer(name, static_cast<int>(epochs), 42);
    if (!imp.ok()) continue;
    MethodResult r = RunPlain(**imp, prep);
    table.AddRow({r.method, StrFormat("%.4f", r.rmse),
                  FormatSeconds(r.seconds),
                  StrFormat("%.1f", r.sample_rate)});
  }
  // SCIS on top of the GAN-based models.
  for (const std::string& name : {std::string("GINN"), std::string("GAIN")}) {
    auto imp = MakeImputer(name, 1, 42);
    if (!imp.ok()) continue;
    auto* gen = dynamic_cast<GenerativeImputer*>(imp->get());
    ScisOptions opts;
    opts.validation_size = 300;
    opts.initial_size = 400;
    opts.dim.epochs = static_cast<int>(epochs);
    opts.dim.lambda = 130.0;
    opts.sse.epsilon = 0.001;
    MethodResult r = RunScis(*gen, opts, prep);
    table.AddRow({r.method, StrFormat("%.4f", r.rmse),
                  FormatSeconds(r.seconds),
                  StrFormat("%.1f", r.sample_rate)});
  }
  table.Print();
  return 0;
}
