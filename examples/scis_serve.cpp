// scis_serve — online imputation server (event-driven, sharded).
//
//   scis_serve --params a.ckpt[,b.ckpt,...] [--shards 1] \
//              [--host 127.0.0.1] [--port 0] [--port_file serve.port] \
//              [--threads 0] [--max_batch_rows 64] [--max_wait_ms 2] \
//              [--max_queue_rows 1024] [--request_timeout_ms 0] \
//              [--index train.annidx] [--retrieval_k 10] \
//              [--retrieval_blend 0.5] [--report-out report.json]
//
// Loads one or more self-contained checkpoints (text v2 from
// scis_impute --save_params, or mmap-able binary v3 from --save_params_bin)
// and serves them behind one epoll event loop: requests route to the model
// matching their column count, then to one of --shards micro-batching
// queues by payload hash. Results are bit-identical to the offline Imputer
// on the same rows, for any shard count.
//
// SIGHUP re-loads every --params checkpoint from disk and hot-swaps it in
// under traffic (same schema widths required). SIGINT/SIGTERM or a client
// --shutdown stop the server gracefully.
//
// --port 0 binds an ephemeral port; --port_file publishes the assigned port
// for scripts (the CI loopback smoke test uses this).
//
// --index attaches an ANN index over the training rows (write one with
// scis_impute --save_index) to the single served model: each missing cell
// then blends the generator output with the observed mean of the retrieved
// nearest training rows. Incompatible with multi-model serving.
//
// --lifecycle turns on SSE-driven continuous learning (single model only):
// every admitted request's rows are tapped into an append-only sample store
// under --lifecycle_dir, a background controller re-runs the SSE confidence
// estimate every --lifecycle_interval_ms, and when P(D(θ_n, θ_N) ≤ ε)
// drops below 1−α it retrains on the SSE-chosen n* and hot-swaps the new
// checkpoint into the fleet (published under <dir>/checkpoints). The
// confidence / n* / swap-generation metrics land in --report-out.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "lifecycle/lifecycle.h"
#include "nn/serialize.h"
#include "obs/run_report.h"
#include "runtime/runtime.h"
#include "serve/checkpoint_loader.h"
#include "serve/server.h"

using namespace scis;

namespace {

serve::ImputationServer* g_server = nullptr;
std::atomic<bool> g_reload{false};

void HandleSignal(int) {
  if (g_server != nullptr) g_server->Shutdown();
}

void HandleReload(int) { g_reload.store(true); }

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t at = 0;
  while (at <= s.size()) {
    const size_t comma = s.find(',', at);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > at) out.push_back(s.substr(at, end - at));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string params, host = "127.0.0.1", port_file, report_out, index_path;
  long long port = 0;
  long long threads = 0;
  long long shards = 1;
  long long max_batch_rows = 64;
  long long max_queue_rows = 1024;
  long long retrieval_k = 10;
  double max_wait_ms = 2.0;
  double request_timeout_ms = 0.0;
  double retrieval_blend = 0.5;
  bool lifecycle = false;
  std::string lifecycle_dir;
  double lifecycle_interval_ms = 5000.0;
  double lifecycle_epsilon = 0.001;
  double lifecycle_alpha = 0.05;
  double lifecycle_eta_scale = 1e-5;
  long long lifecycle_min_rows = 64;
  long long lifecycle_n0 = 0;
  long long lifecycle_retrain_epochs = 4;
  long long lifecycle_retrain_cap = 4096;
  FlagParser flags;
  flags.AddString("params", &params,
                  "comma-separated checkpoints (v2 text or v3 binary); "
                  "schema widths must be unique");
  flags.AddString("host", &host, "bind address (dotted quad)");
  flags.AddInt("port", &port, "TCP port (0 = ephemeral)");
  flags.AddString("port_file", &port_file,
                  "write the bound port here once listening");
  flags.AddInt("threads", &threads,
               "worker threads (0 = SCIS_NUM_THREADS or hardware)");
  flags.AddInt("shards", &shards,
               "independent micro-batching queues per model");
  flags.AddInt("max_batch_rows", &max_batch_rows,
               "flush a micro-batch at this many rows");
  flags.AddInt("max_queue_rows", &max_queue_rows,
               "admission bound; beyond it requests are rejected");
  flags.AddDouble("max_wait_ms", &max_wait_ms,
                  "flush deadline from the oldest queued request");
  flags.AddDouble("request_timeout_ms", &request_timeout_ms,
                  "fail requests queued longer than this (0 = off)");
  flags.AddString("index", &index_path,
                  "ANN index from scis_impute --save_index "
                  "(enables retrieval-augmented imputation)");
  flags.AddInt("retrieval_k", &retrieval_k,
               "neighbours retrieved per served row");
  flags.AddDouble("retrieval_blend", &retrieval_blend,
                  "neighbour weight in [0,1] for missing cells");
  flags.AddBool("lifecycle", &lifecycle,
                "enable SSE-driven continuous learning (single model)");
  flags.AddString("lifecycle_dir", &lifecycle_dir,
                  "root for the sample store and published checkpoints");
  flags.AddDouble("lifecycle_interval_ms", &lifecycle_interval_ms,
                  "drift-check cadence");
  flags.AddDouble("lifecycle_epsilon", &lifecycle_epsilon,
                  "SSE tolerated output difference (Eq. 4)");
  flags.AddDouble("lifecycle_alpha", &lifecycle_alpha,
                  "drift when confidence < 1 - alpha");
  flags.AddDouble("lifecycle_eta_scale", &lifecycle_eta_scale,
                  "Theorem-1 eta calibration constant");
  flags.AddInt("lifecycle_min_rows", &lifecycle_min_rows,
               "stored rows required before the first check");
  flags.AddInt("lifecycle_n0", &lifecycle_n0,
               "rows the served model was trained on (0 = min_rows)");
  flags.AddInt("lifecycle_retrain_epochs", &lifecycle_retrain_epochs,
               "DIM epochs per incremental retrain");
  flags.AddInt("lifecycle_retrain_cap", &lifecycle_retrain_cap,
               "row budget per retrain (0 = min(n*, stored rows))");
  flags.AddString("report-out", &report_out,
                  "write a JSON run report on shutdown");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  const std::vector<std::string> param_paths = SplitCommas(params);
  if (param_paths.empty()) {
    std::printf("--params is required (see --help)\n");
    return 1;
  }
  if (shards < 1) {
    std::printf("--shards must be >= 1\n");
    return 1;
  }
  if (!index_path.empty() && param_paths.size() > 1) {
    std::printf("--index requires a single --params checkpoint\n");
    return 1;
  }
  if (lifecycle && param_paths.size() > 1) {
    std::printf("--lifecycle requires a single --params checkpoint\n");
    return 1;
  }
  if (lifecycle && lifecycle_dir.empty()) {
    std::printf("--lifecycle requires --lifecycle_dir\n");
    return 1;
  }
  if (threads > 0) runtime::SetNumThreads(static_cast<int>(threads));

  std::vector<std::shared_ptr<const serve::ImputationEngine>> engines;
  for (const std::string& path : param_paths) {
    Result<std::shared_ptr<const serve::ImputationEngine>> engine =
        index_path.empty()
            ? serve::ImputationEngine::Load(path)
            : serve::ImputationEngine::Load(
                  path, index_path,
                  serve::RetrievalOptions{static_cast<size_t>(retrieval_k),
                                          16, retrieval_blend});
    if (!engine.ok()) {
      std::printf("load %s: %s\n", path.c_str(),
                  engine.status().ToString().c_str());
      return 1;
    }
    std::printf("loaded %s: %s generator, %zu columns%s\n", path.c_str(),
                (*engine)->model().c_str(), (*engine)->num_cols(),
                (*engine)->has_index() ? ", retrieval on" : "");
    engines.push_back(std::move(*engine));
  }

  serve::ServerOptions opts;
  opts.host = host;
  opts.port = static_cast<int>(port);
  opts.shards = static_cast<size_t>(shards);
  opts.queue.max_batch_rows = static_cast<size_t>(max_batch_rows);
  opts.queue.max_queue_rows = static_cast<size_t>(max_queue_rows);
  opts.queue.max_wait_ms = max_wait_ms;
  opts.queue.request_timeout_ms = request_timeout_ms;

  // Continuous learning: the manager is built before the server (its tap
  // must be in ServerOptions), but publishes *into* the server — the holder
  // closes the cycle once the server exists.
  auto server_holder = std::make_shared<serve::ImputationServer*>(nullptr);
  std::unique_ptr<lifecycle::LifecycleManager> manager;
  if (lifecycle) {
    Result<Checkpoint> ckpt = LoadCheckpoint(param_paths[0]);
    if (!ckpt.ok()) {
      std::printf("lifecycle checkpoint %s: %s\n", param_paths[0].c_str(),
                  ckpt.status().ToString().c_str());
      return 1;
    }
    lifecycle::LifecycleOptions lopts;
    lopts.dir = lifecycle_dir;
    lopts.drift.check_interval_ms = lifecycle_interval_ms;
    lopts.drift.min_rows = static_cast<size_t>(lifecycle_min_rows);
    lopts.drift.initial_trained_rows = static_cast<size_t>(lifecycle_n0);
    lopts.drift.retrain_cap_rows = static_cast<size_t>(lifecycle_retrain_cap);
    lopts.drift.sse.epsilon = lifecycle_epsilon;
    lopts.drift.sse.alpha = lifecycle_alpha;
    lopts.drift.sse.eta_scale = lifecycle_eta_scale;
    lopts.drift.retrain.epochs = static_cast<int>(lifecycle_retrain_epochs);
    Result<std::unique_ptr<lifecycle::LifecycleManager>> mgr =
        lifecycle::LifecycleManager::Create(
            *ckpt,
            [server_holder](
                std::shared_ptr<const serve::ImputationEngine> next) {
              if (*server_holder == nullptr) {
                return Status::Unavailable("server not started");
              }
              return (*server_holder)->HotSwap(std::move(next));
            },
            lopts);
    if (!mgr.ok()) {
      std::printf("lifecycle: %s\n", mgr.status().ToString().c_str());
      return 1;
    }
    manager = std::move(*mgr);
    opts.sample_hook = manager->SampleHook();
    std::printf("lifecycle on: %s (%zu rows stored, interval %.0f ms)\n",
                lifecycle_dir.c_str(), manager->store().num_rows(),
                lifecycle_interval_ms);
  }

  serve::ImputationServer server(std::move(engines), opts);
  *server_holder = &server;
  if (Status st = server.Start(); !st.ok()) {
    std::printf("start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving %zu model%s x %lld shard%s on %s:%d\n",
              param_paths.size(), param_paths.size() == 1 ? "" : "s", shards,
              shards == 1 ? "" : "s", host.c_str(), server.port());
  if (!port_file.empty()) {
    FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot write %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%d\n", server.port());
    std::fclose(f);
  }

  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGHUP, HandleReload);
  if (manager) manager->Start();

  Stopwatch watch;
  // Poll between waits so a SIGHUP can hot-swap re-loaded checkpoints
  // without stopping the event loop.
  while (!server.WaitFor(200.0)) {
    if (!g_reload.exchange(false)) continue;
    for (const std::string& path : param_paths) {
      // Same load-and-validate rules as the lifecycle publisher
      // (serve/checkpoint_loader), so the two swap paths cannot diverge.
      Result<std::shared_ptr<const serve::ImputationEngine>> engine =
          serve::LoadAndValidateCheckpoint(path);
      const Status st =
          engine.ok() ? server.HotSwap(std::move(*engine)) : engine.status();
      std::printf("reload %s: %s\n", path.c_str(),
                  st.ok() ? "swapped" : st.ToString().c_str());
    }
  }
  if (manager) manager->Stop();
  server.Shutdown();
  g_server = nullptr;
  *server_holder = nullptr;

  if (!report_out.empty()) {
    obs::RunReport report("scis_serve");
    report.AddConfig("params", params);
    report.AddConfig("shards", static_cast<int64_t>(shards));
    report.AddConfig("max_batch_rows", static_cast<int64_t>(max_batch_rows));
    report.AddConfig("max_queue_rows", static_cast<int64_t>(max_queue_rows));
    report.AddConfig("max_wait_ms", max_wait_ms);
    report.AddConfig("request_timeout_ms", request_timeout_ms);
    report.AddConfig("threads", static_cast<int64_t>(threads));
    if (lifecycle) {
      report.AddConfig("lifecycle_dir", lifecycle_dir);
      report.AddConfig("lifecycle_epsilon", lifecycle_epsilon);
      report.AddConfig("lifecycle_alpha", lifecycle_alpha);
      report.AddConfig("lifecycle_interval_ms", lifecycle_interval_ms);
    }
    report.AddPhase("serving", watch.ElapsedSeconds());
    if (Status st = report.Write(report_out); !st.ok()) {
      std::printf("report %s: %s\n", report_out.c_str(),
                  st.ToString().c_str());
    }
  }
  return 0;
}
