// scis_serve — online imputation server (event-driven, sharded).
//
//   scis_serve --params a.ckpt[,b.ckpt,...] [--shards 1] \
//              [--host 127.0.0.1] [--port 0] [--port_file serve.port] \
//              [--threads 0] [--max_batch_rows 64] [--max_wait_ms 2] \
//              [--max_queue_rows 1024] [--request_timeout_ms 0] \
//              [--index train.annidx] [--retrieval_k 10] \
//              [--retrieval_blend 0.5] [--report-out report.json]
//
// Loads one or more self-contained checkpoints (text v2 from
// scis_impute --save_params, or mmap-able binary v3 from --save_params_bin)
// and serves them behind one epoll event loop: requests route to the model
// matching their column count, then to one of --shards micro-batching
// queues by payload hash. Results are bit-identical to the offline Imputer
// on the same rows, for any shard count.
//
// SIGHUP re-loads every --params checkpoint from disk and hot-swaps it in
// under traffic (same schema widths required). SIGINT/SIGTERM or a client
// --shutdown stop the server gracefully.
//
// --port 0 binds an ephemeral port; --port_file publishes the assigned port
// for scripts (the CI loopback smoke test uses this).
//
// --index attaches an ANN index over the training rows (write one with
// scis_impute --save_index) to the single served model: each missing cell
// then blends the generator output with the observed mean of the retrieved
// nearest training rows. Incompatible with multi-model serving.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "obs/run_report.h"
#include "runtime/runtime.h"
#include "serve/server.h"

using namespace scis;

namespace {

serve::ImputationServer* g_server = nullptr;
std::atomic<bool> g_reload{false};

void HandleSignal(int) {
  if (g_server != nullptr) g_server->Shutdown();
}

void HandleReload(int) { g_reload.store(true); }

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t at = 0;
  while (at <= s.size()) {
    const size_t comma = s.find(',', at);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > at) out.push_back(s.substr(at, end - at));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string params, host = "127.0.0.1", port_file, report_out, index_path;
  long long port = 0;
  long long threads = 0;
  long long shards = 1;
  long long max_batch_rows = 64;
  long long max_queue_rows = 1024;
  long long retrieval_k = 10;
  double max_wait_ms = 2.0;
  double request_timeout_ms = 0.0;
  double retrieval_blend = 0.5;
  FlagParser flags;
  flags.AddString("params", &params,
                  "comma-separated checkpoints (v2 text or v3 binary); "
                  "schema widths must be unique");
  flags.AddString("host", &host, "bind address (dotted quad)");
  flags.AddInt("port", &port, "TCP port (0 = ephemeral)");
  flags.AddString("port_file", &port_file,
                  "write the bound port here once listening");
  flags.AddInt("threads", &threads,
               "worker threads (0 = SCIS_NUM_THREADS or hardware)");
  flags.AddInt("shards", &shards,
               "independent micro-batching queues per model");
  flags.AddInt("max_batch_rows", &max_batch_rows,
               "flush a micro-batch at this many rows");
  flags.AddInt("max_queue_rows", &max_queue_rows,
               "admission bound; beyond it requests are rejected");
  flags.AddDouble("max_wait_ms", &max_wait_ms,
                  "flush deadline from the oldest queued request");
  flags.AddDouble("request_timeout_ms", &request_timeout_ms,
                  "fail requests queued longer than this (0 = off)");
  flags.AddString("index", &index_path,
                  "ANN index from scis_impute --save_index "
                  "(enables retrieval-augmented imputation)");
  flags.AddInt("retrieval_k", &retrieval_k,
               "neighbours retrieved per served row");
  flags.AddDouble("retrieval_blend", &retrieval_blend,
                  "neighbour weight in [0,1] for missing cells");
  flags.AddString("report-out", &report_out,
                  "write a JSON run report on shutdown");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  const std::vector<std::string> param_paths = SplitCommas(params);
  if (param_paths.empty()) {
    std::printf("--params is required (see --help)\n");
    return 1;
  }
  if (shards < 1) {
    std::printf("--shards must be >= 1\n");
    return 1;
  }
  if (!index_path.empty() && param_paths.size() > 1) {
    std::printf("--index requires a single --params checkpoint\n");
    return 1;
  }
  if (threads > 0) runtime::SetNumThreads(static_cast<int>(threads));

  std::vector<std::shared_ptr<const serve::ImputationEngine>> engines;
  for (const std::string& path : param_paths) {
    Result<std::shared_ptr<const serve::ImputationEngine>> engine =
        index_path.empty()
            ? serve::ImputationEngine::Load(path)
            : serve::ImputationEngine::Load(
                  path, index_path,
                  serve::RetrievalOptions{static_cast<size_t>(retrieval_k),
                                          16, retrieval_blend});
    if (!engine.ok()) {
      std::printf("load %s: %s\n", path.c_str(),
                  engine.status().ToString().c_str());
      return 1;
    }
    std::printf("loaded %s: %s generator, %zu columns%s\n", path.c_str(),
                (*engine)->model().c_str(), (*engine)->num_cols(),
                (*engine)->has_index() ? ", retrieval on" : "");
    engines.push_back(std::move(*engine));
  }

  serve::ServerOptions opts;
  opts.host = host;
  opts.port = static_cast<int>(port);
  opts.shards = static_cast<size_t>(shards);
  opts.queue.max_batch_rows = static_cast<size_t>(max_batch_rows);
  opts.queue.max_queue_rows = static_cast<size_t>(max_queue_rows);
  opts.queue.max_wait_ms = max_wait_ms;
  opts.queue.request_timeout_ms = request_timeout_ms;
  serve::ImputationServer server(std::move(engines), opts);
  if (Status st = server.Start(); !st.ok()) {
    std::printf("start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving %zu model%s x %lld shard%s on %s:%d\n",
              param_paths.size(), param_paths.size() == 1 ? "" : "s", shards,
              shards == 1 ? "" : "s", host.c_str(), server.port());
  if (!port_file.empty()) {
    FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot write %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%d\n", server.port());
    std::fclose(f);
  }

  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGHUP, HandleReload);

  Stopwatch watch;
  // Poll between waits so a SIGHUP can hot-swap re-loaded checkpoints
  // without stopping the event loop.
  while (!server.WaitFor(200.0)) {
    if (!g_reload.exchange(false)) continue;
    for (const std::string& path : param_paths) {
      Result<std::shared_ptr<const serve::ImputationEngine>> engine =
          serve::ImputationEngine::Load(path);
      const Status st =
          engine.ok() ? server.HotSwap(std::move(*engine)) : engine.status();
      std::printf("reload %s: %s\n", path.c_str(),
                  st.ok() ? "swapped" : st.ToString().c_str());
    }
  }
  server.Shutdown();
  g_server = nullptr;

  if (!report_out.empty()) {
    obs::RunReport report("scis_serve");
    report.AddConfig("params", params);
    report.AddConfig("shards", static_cast<int64_t>(shards));
    report.AddConfig("max_batch_rows", static_cast<int64_t>(max_batch_rows));
    report.AddConfig("max_queue_rows", static_cast<int64_t>(max_queue_rows));
    report.AddConfig("max_wait_ms", max_wait_ms);
    report.AddConfig("request_timeout_ms", request_timeout_ms);
    report.AddConfig("threads", static_cast<int64_t>(threads));
    report.AddPhase("serving", watch.ElapsedSeconds());
    if (Status st = report.Write(report_out); !st.ok()) {
      std::printf("report %s: %s\n", report_out.c_str(),
                  st.ToString().c_str());
    }
  }
  return 0;
}
