// scis_serve — online imputation server.
//
//   scis_serve --params model.ckpt [--host 127.0.0.1] [--port 0] \
//              [--port_file serve.port] [--threads 0] \
//              [--max_batch_rows 64] [--max_wait_ms 2] \
//              [--max_queue_rows 1024] [--request_timeout_ms 0] \
//              [--index train.annidx] [--retrieval_k 10] \
//              [--retrieval_blend 0.5] [--report-out report.json]
//
// Loads a self-contained v2 checkpoint (write one with
// scis_impute --save_params), then serves imputation requests over the
// length-prefixed binary wire protocol until SIGINT/SIGTERM or a client
// sends --shutdown. Concurrent requests are coalesced into micro-batches;
// results are bit-identical to the offline Imputer on the same rows.
//
// --port 0 binds an ephemeral port; --port_file publishes the assigned port
// for scripts (the CI loopback smoke test uses this).
//
// --index attaches an ANN index over the training rows (write one with
// scis_impute --save_index): each missing cell then blends the generator
// output with the observed mean of the retrieved nearest training rows.
#include <csignal>
#include <cstdio>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "obs/run_report.h"
#include "runtime/runtime.h"
#include "serve/server.h"

using namespace scis;

namespace {

serve::ImputationServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->Shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  std::string params, host = "127.0.0.1", port_file, report_out, index_path;
  long long port = 0;
  long long threads = 0;
  long long max_batch_rows = 64;
  long long max_queue_rows = 1024;
  long long retrieval_k = 10;
  double max_wait_ms = 2.0;
  double request_timeout_ms = 0.0;
  double retrieval_blend = 0.5;
  FlagParser flags;
  flags.AddString("params", &params, "v2 checkpoint from --save_params");
  flags.AddString("host", &host, "bind address (dotted quad)");
  flags.AddInt("port", &port, "TCP port (0 = ephemeral)");
  flags.AddString("port_file", &port_file,
                  "write the bound port here once listening");
  flags.AddInt("threads", &threads,
               "worker threads (0 = SCIS_NUM_THREADS or hardware)");
  flags.AddInt("max_batch_rows", &max_batch_rows,
               "flush a micro-batch at this many rows");
  flags.AddInt("max_queue_rows", &max_queue_rows,
               "admission bound; beyond it requests are rejected");
  flags.AddDouble("max_wait_ms", &max_wait_ms,
                  "flush deadline from the oldest queued request");
  flags.AddDouble("request_timeout_ms", &request_timeout_ms,
                  "fail requests queued longer than this (0 = off)");
  flags.AddString("index", &index_path,
                  "ANN index from scis_impute --save_index "
                  "(enables retrieval-augmented imputation)");
  flags.AddInt("retrieval_k", &retrieval_k,
               "neighbours retrieved per served row");
  flags.AddDouble("retrieval_blend", &retrieval_blend,
                  "neighbour weight in [0,1] for missing cells");
  flags.AddString("report-out", &report_out,
                  "write a JSON run report on shutdown");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  if (params.empty()) {
    std::printf("--params is required (see --help)\n");
    return 1;
  }
  if (threads > 0) runtime::SetNumThreads(static_cast<int>(threads));

  Result<std::shared_ptr<const serve::ImputationEngine>> engine =
      index_path.empty()
          ? serve::ImputationEngine::Load(params)
          : serve::ImputationEngine::Load(
                params, index_path,
                serve::RetrievalOptions{static_cast<size_t>(retrieval_k), 16,
                                        retrieval_blend});
  if (!engine.ok()) {
    std::printf("load %s: %s\n", params.c_str(),
                engine.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %s: %s generator, %zu columns%s\n", params.c_str(),
              (*engine)->model().c_str(), (*engine)->num_cols(),
              (*engine)->has_index() ? ", retrieval on" : "");

  serve::ServerOptions opts;
  opts.host = host;
  opts.port = static_cast<int>(port);
  opts.queue.max_batch_rows = static_cast<size_t>(max_batch_rows);
  opts.queue.max_queue_rows = static_cast<size_t>(max_queue_rows);
  opts.queue.max_wait_ms = max_wait_ms;
  opts.queue.request_timeout_ms = request_timeout_ms;
  serve::ImputationServer server(*engine, opts);
  if (Status st = server.Start(); !st.ok()) {
    std::printf("start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving on %s:%d\n", host.c_str(), server.port());
  if (!port_file.empty()) {
    FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot write %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%d\n", server.port());
    std::fclose(f);
  }

  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  Stopwatch watch;
  server.Wait();
  g_server = nullptr;

  if (!report_out.empty()) {
    obs::RunReport report("scis_serve");
    report.AddConfig("params", params);
    report.AddConfig("max_batch_rows", static_cast<int64_t>(max_batch_rows));
    report.AddConfig("max_queue_rows", static_cast<int64_t>(max_queue_rows));
    report.AddConfig("max_wait_ms", max_wait_ms);
    report.AddConfig("request_timeout_ms", request_timeout_ms);
    report.AddConfig("threads", static_cast<int64_t>(threads));
    report.AddPhase("serving", watch.ElapsedSeconds());
    if (Status st = report.Write(report_out); !st.ok()) {
      std::printf("report %s: %s\n", report_out.c_str(),
                  st.ToString().c_str());
    }
  }
  return 0;
}
