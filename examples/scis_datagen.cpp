// scis_datagen — emit the Table-II-shaped synthetic datasets as CSV, for
// use with scis_impute or external tools:
//
//   scis_datagen --dataset Trial --scale 0.5 --output trial.csv \
//                [--labels trial_labels.csv] [--complete trial_full.csv]
//
// The incomplete CSV uses empty fields for missing cells. `--complete`
// additionally writes the ground-truth matrix (what a real evaluation
// would never have — handy for scoring demos).
#include <cstdio>
#include <fstream>

#include "common/flags.h"
#include "data/covid_synth.h"
#include "data/csv.h"

using namespace scis;

int main(int argc, char** argv) {
  std::string dataset = "Trial", output, labels_path, complete_path;
  double scale = 0.1;
  long long seed = 1;
  FlagParser flags;
  flags.AddString("dataset", &dataset,
                  "Trial|Emergency|Response|Search|Weather|Surveil");
  flags.AddDouble("scale", &scale, "row-count multiplier vs the paper");
  flags.AddString("output", &output, "incomplete CSV to write");
  flags.AddString("labels", &labels_path,
                  "optional CSV of downstream labels (one column)");
  flags.AddString("complete", &complete_path,
                  "optional CSV of the fully observed ground truth");
  flags.AddInt("seed", &seed, "generator seed override (0 = preset)");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  if (output.empty()) {
    std::printf("--output is required (see --help)\n");
    return 1;
  }

  SyntheticSpec spec;
  for (const SyntheticSpec& s : AllCovidSpecs(scale)) {
    if (s.name == dataset) spec = s;
  }
  if (spec.name.empty()) {
    std::printf("unknown dataset %s\n", dataset.c_str());
    return 1;
  }
  if (seed != 0) spec.seed = static_cast<uint64_t>(seed);

  LabeledDataset gen = GenerateSynthetic(spec);
  std::printf("%s: %zu rows x %zu cols, %.2f%% missing (%s task)\n",
              spec.name.c_str(), gen.incomplete.num_rows(),
              gen.incomplete.num_cols(),
              100.0 * gen.incomplete.MissingRate(),
              spec.task == TaskKind::kClassification ? "classification"
                                                     : "regression");
  if (Status st = WriteCsvDataset(gen.incomplete, output); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", output.c_str());
  if (!complete_path.empty()) {
    if (Status st = WriteCsvDataset(gen.complete, complete_path); !st.ok()) {
      std::printf("%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", complete_path.c_str());
  }
  if (!labels_path.empty()) {
    std::ofstream out(labels_path);
    if (!out) {
      std::printf("cannot open %s\n", labels_path.c_str());
      return 1;
    }
    out << "label\n";
    for (double y : gen.labels) out << y << "\n";
    std::printf("wrote %s\n", labels_path.c_str());
  }
  return 0;
}
