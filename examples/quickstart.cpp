// Quickstart: impute a small incomplete dataset with SCIS-accelerated GAIN.
//
// Walks the full public-API path a new user follows:
//   synthesize incomplete data -> normalize -> train GAIN under SCIS
//   (DIM + SSE) -> impute -> score against held-out ground truth.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
//               ./build/examples/quickstart --threads 4
#include <cstdio>

#include "common/flags.h"
#include "core/scis.h"
#include "data/covid_synth.h"
#include "data/missingness.h"
#include "data/normalizer.h"
#include "eval/metrics.h"
#include "models/gain_imputer.h"
#include "models/mean_imputer.h"
#include "runtime/runtime.h"

using namespace scis;

int main(int argc, char** argv) {
  long long threads = 0;
  FlagParser flags;
  flags.AddInt("threads", &threads,
               "worker threads (0 = SCIS_NUM_THREADS or hardware)");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  if (threads > 0) runtime::SetNumThreads(static_cast<int>(threads));

  // 1. An incomplete dataset. Here: a synthetic stand-in for the paper's
  //    COVID-19 "Trial" table (6,433 rows x 9 features, ~9.6% missing),
  //    scaled down so the example runs in seconds.
  SyntheticSpec spec = TrialSpec(/*scale=*/0.25);
  LabeledDataset gen = GenerateSynthetic(spec);
  std::printf("dataset: %s  (%zu rows x %zu cols, %.1f%% missing)\n",
              spec.name.c_str(), gen.incomplete.num_rows(),
              gen.incomplete.num_cols(),
              100.0 * gen.incomplete.MissingRate());

  // 2. Hold out 20% of the observed cells as ground truth (§VI protocol)
  //    and min-max normalize to [0,1]^d.
  Rng rng(7);
  HoldOut holdout = MakeHoldOut(gen.incomplete, 0.2, rng);
  MinMaxNormalizer norm;
  Dataset train = norm.FitTransform(holdout.train);

  // 3. Train GAIN under SCIS: DIM swaps the JS adversarial loss for the
  //    masking Sinkhorn divergence; SSE picks the minimum sample size n*
  //    for the requested error bound.
  GainImputerOptions gain_opts;
  gain_opts.deep.epochs = 1;  // SCIS drives the training epochs via DIM
  GainImputer gain(gain_opts);

  ScisOptions opts;
  opts.validation_size = 200;
  opts.initial_size = 300;
  opts.dim.epochs = 20;
  opts.dim.lambda = 130.0;  // the paper's §VI default
  // User-tolerated error bound. The §VI default is 0.001; this demo runs on
  // a 4x-scaled-down Trial, where n* depends on absolute sample counts, so
  // a slightly relaxed bound keeps the sub-sampling behaviour visible.
  opts.sse.epsilon = 0.002;
  Scis scis(opts);
  Result<Matrix> imputed = scis.Run(gain, train);
  if (!imputed.ok()) {
    std::printf("SCIS failed: %s\n", imputed.status().ToString().c_str());
    return 1;
  }

  // 4. Report what SSE decided and how accurate the imputation is.
  const ScisReport& rep = scis.report();
  std::printf("SSE chose n* = %zu of %zu rows (R_t = %.2f%%)\n", rep.n_star,
              train.num_rows(), 100.0 * rep.training_sample_rate);
  std::printf("time: DIM %.2fs + SSE %.2fs + retrain %.2fs = %.2fs\n",
              rep.dim_initial_seconds, rep.sse_seconds,
              rep.dim_final_seconds, rep.total_seconds);

  // Normalize the held-out truth with the same column ranges for scoring.
  Matrix truth(train.num_rows(), train.num_cols());
  for (size_t i = 0; i < truth.rows(); ++i)
    for (size_t j = 0; j < truth.cols(); ++j)
      if (holdout.eval_mask(i, j) == 1.0)
        truth(i, j) = (holdout.truth(i, j) - norm.lo()[j]) /
                      (norm.hi()[j] - norm.lo()[j]);

  MeanImputer mean;
  if (!mean.Fit(train).ok()) return 1;
  std::printf("RMSE  SCIS-GAIN: %.4f   mean-fill baseline: %.4f\n",
              MaskedRmse(*imputed, truth, holdout.eval_mask),
              MaskedRmse(mean.Impute(train), truth, holdout.eval_mask));

  // 5. The imputed matrix is in normalized units; map back to raw units.
  Matrix raw = norm.InverseTransform(*imputed);
  std::printf("first imputed row (raw units):");
  for (size_t j = 0; j < std::min<size_t>(raw.cols(), 5); ++j) {
    std::printf(" %.3f", raw(0, j));
  }
  std::printf(" ...\n");
  return 0;
}
