// Downstream-analytics scenario (§VI-D): impute a Weather-shaped sensor
// table, then train a regressor on the completed data, comparing
// prediction quality across imputers — the paper's ultimate argument that
// better imputation helps the analyses that follow.
//
// Compares: no-model mean fill, GAIN, SCIS-GAIN.
#include <cstdio>

#include "common/flags.h"
#include "core/scis.h"
#include "data/covid_synth.h"
#include "data/missingness.h"
#include "data/normalizer.h"
#include "eval/downstream.h"
#include "eval/metrics.h"
#include "models/gain_imputer.h"
#include "models/mean_imputer.h"

using namespace scis;

int main(int argc, char** argv) {
  double scale = 0.004;  // 4.9M * 0.004 ≈ 20k rows
  long long epochs = 10;
  FlagParser flags;
  flags.AddDouble("scale", &scale, "row-count multiplier vs the paper");
  flags.AddInt("epochs", &epochs, "imputer training epochs");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }

  SyntheticSpec spec = WeatherSpec(scale);
  LabeledDataset gen = GenerateSynthetic(spec);
  std::printf(
      "Weather-shaped dataset: %zu rows x %zu cols, %.1f%% missing; "
      "regression target MAE scale ~%.0f\n",
      gen.incomplete.num_rows(), gen.incomplete.num_cols(),
      100.0 * gen.incomplete.MissingRate(), spec.label_scale);

  MinMaxNormalizer norm;
  Dataset train = norm.FitTransform(gen.incomplete);

  DownstreamOptions ds;
  ds.epochs = 30;  // §VI-D protocol: 30 epochs, lr 0.005, dropout 0.5

  auto report = [&](const char* name, const Matrix& imputed) {
    DownstreamResult r =
        EvaluateDownstream(imputed, gen.labels, TaskKind::kRegression, ds);
    std::printf("%-10s downstream MAE = %.3f\n", name, r.mae);
  };

  {
    MeanImputer mean;
    if (!mean.Fit(train).ok()) return 1;
    report("Mean", mean.Impute(train));
  }
  {
    GainImputerOptions o;
    o.deep.epochs = static_cast<int>(epochs);
    GainImputer gain(o);
    if (!gain.Fit(train).ok()) return 1;
    report("GAIN", gain.Impute(train));
  }
  {
    GainImputerOptions o;
    o.deep.epochs = 1;
    GainImputer gain(o);
    ScisOptions opts;
    opts.validation_size = 800;
    opts.initial_size = 1000;
    opts.dim.epochs = static_cast<int>(epochs);
    opts.dim.lambda = 130.0;
    opts.sse.epsilon = 0.001;
    Scis scis(opts);
    Result<Matrix> imputed = scis.Run(gain, train);
    if (!imputed.ok()) {
      std::printf("SCIS failed: %s\n", imputed.status().ToString().c_str());
      return 1;
    }
    std::printf("SCIS-GAIN used %.2f%% of rows (n*=%zu)\n",
                100.0 * scis.report().training_sample_rate,
                scis.report().n_star);
    report("SCIS-GAIN", *imputed);
  }
  return 0;
}
