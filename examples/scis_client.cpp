// scis_client — command-line client for scis_serve.
//
//   scis_client --port 4821 --input data.csv --output imputed.csv \
//               [--host 127.0.0.1] [--port_file serve.port] \
//               [--rows_per_request 16] [--ping] [--shutdown]
//
// Reads an incomplete CSV, sends its rows to the server in request-sized
// chunks (missing cells travel as NaN), and writes the completed table —
// byte-identical to what scis_impute would have produced offline with the
// served model. --ping checks liveness; --shutdown asks the server to drain
// and exit. Either can be combined with or used without --input.
#include <cmath>
#include <cstdio>

#include "common/flags.h"
#include "data/csv.h"
#include "serve/client.h"

using namespace scis;

int main(int argc, char** argv) {
  std::string host = "127.0.0.1", port_file, input, output;
  long long port = 0;
  long long rows_per_request = 16;
  bool ping = false, shutdown = false;
  FlagParser flags;
  flags.AddString("host", &host, "server address (dotted quad)");
  flags.AddInt("port", &port, "server port");
  flags.AddString("port_file", &port_file,
                  "read the port from this file (scis_serve --port_file)");
  flags.AddString("input", &input, "incomplete CSV to impute");
  flags.AddString("output", &output, "where to write the imputed CSV");
  flags.AddInt("rows_per_request", &rows_per_request,
               "rows per request frame");
  flags.AddBool("ping", &ping, "check server liveness first");
  flags.AddBool("shutdown", &shutdown, "ask the server to drain and exit");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return st.code() == StatusCode::kOutOfRange ? 0 : 1;
  }
  if (!port_file.empty()) {
    FILE* f = std::fopen(port_file.c_str(), "r");
    long p = 0;
    if (f == nullptr || std::fscanf(f, "%ld", &p) != 1) {
      std::printf("cannot read port from %s\n", port_file.c_str());
      if (f != nullptr) std::fclose(f);
      return 1;
    }
    std::fclose(f);
    port = p;
  }
  if (port <= 0) {
    std::printf("--port or --port_file is required (see --help)\n");
    return 1;
  }
  if (rows_per_request < 1) rows_per_request = 1;

  Result<std::unique_ptr<serve::ImputationClient>> connected =
      serve::ImputationClient::Connect(host, static_cast<int>(port));
  if (!connected.ok()) {
    std::printf("%s\n", connected.status().ToString().c_str());
    return 1;
  }
  serve::ImputationClient& client = **connected;

  if (ping) {
    if (Status st = client.Ping(); !st.ok()) {
      std::printf("ping: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("pong from %s:%lld\n", host.c_str(), port);
  }

  if (!input.empty()) {
    if (output.empty()) {
      std::printf("--output is required with --input\n");
      return 1;
    }
    Result<Dataset> loaded = ReadCsvDataset(input, "input");
    if (!loaded.ok()) {
      std::printf("read failed: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    const Dataset& raw = loaded.value();
    // Missing cells travel as quiet NaN, the wire encoding of "impute me".
    Matrix request(raw.num_rows(), raw.num_cols());
    for (size_t i = 0; i < raw.num_rows(); ++i) {
      for (size_t j = 0; j < raw.num_cols(); ++j) {
        request(i, j) = raw.IsObserved(i, j)
                            ? raw.values()(i, j)
                            : std::numeric_limits<double>::quiet_NaN();
      }
    }
    Matrix imputed(raw.num_rows(), raw.num_cols());
    const size_t chunk = static_cast<size_t>(rows_per_request);
    for (size_t r0 = 0; r0 < request.rows(); r0 += chunk) {
      const size_t r1 = std::min(request.rows(), r0 + chunk);
      Result<Matrix> reply = client.Impute(request.RowRange(r0, r1));
      if (!reply.ok()) {
        std::printf("impute rows [%zu, %zu): %s\n", r0, r1,
                    reply.status().ToString().c_str());
        return 1;
      }
      for (size_t i = r0; i < r1; ++i) {
        for (size_t j = 0; j < raw.num_cols(); ++j) {
          imputed(i, j) = reply.value()(i - r0, j);
        }
      }
    }
    Dataset out = Dataset::Complete("imputed", std::move(imputed),
                                    raw.columns());
    if (Status st = WriteCsvDataset(out, output); !st.ok()) {
      std::printf("write failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("imputed %zu rows -> %s\n", raw.num_rows(), output.c_str());
  }

  if (shutdown) {
    if (Status st = client.RequestShutdown(); !st.ok()) {
      std::printf("shutdown: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("server acknowledged shutdown\n");
  }
  return 0;
}
