#!/usr/bin/env bash
# Pre-merge gate and nightly driver (see TESTING.md).
#
#   scripts/ci.sh            # tier-1 gate: build default preset, ctest -L tier1
#   scripts/ci.sh nightly    # long fuzz at high iteration counts, plain and
#                            # under the tsan and asan presets
#
# Requires cmake >= 3.21 (presets). Run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-tier1}"
JOBS="${JOBS:-$(nproc)}"

case "$MODE" in
  tier1)
    cmake --preset default >/dev/null
    cmake --build --preset default -j "$JOBS"
    ctest --preset tier1 -j "$JOBS"
    ;;
  nightly)
    # High iteration counts: the nightly executable scales its property
    # loops with SCIS_NIGHTLY_ITERS (default 200 keeps plain `ctest` fast).
    export SCIS_NIGHTLY_ITERS="${SCIS_NIGHTLY_ITERS:-2000}"
    cmake --preset default >/dev/null
    cmake --build --preset default -j "$JOBS"
    ctest --preset nightly -j "$JOBS"
    for SAN in tsan asan; do
      cmake --preset "$SAN" >/dev/null
      cmake --build --preset "$SAN" -j "$JOBS"
      ctest --preset "nightly-$SAN" -j "$JOBS"
    done
    ;;
  *)
    echo "usage: scripts/ci.sh [tier1|nightly]" >&2
    exit 2
    ;;
esac
