#!/usr/bin/env bash
# Pre-merge gate and nightly driver (see TESTING.md).
#
#   scripts/ci.sh            # tier-1 gate: build default preset, ctest -L tier1
#   scripts/ci.sh nightly    # long fuzz at high iteration counts, plain and
#                            # under the tsan and asan presets
#
# Requires cmake >= 3.21 (presets). Run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-tier1}"
JOBS="${JOBS:-$(nproc)}"

case "$MODE" in
  tier1)
    cmake --preset default >/dev/null
    cmake --build --preset default -j "$JOBS"
    ctest --preset tier1 -j "$JOBS"

    # Serving loopback smoke test: train a tiny model, save both checkpoint
    # formats, serve the mmap-able v3 binary across 2 shards over TCP,
    # impute through scis_client, and require the served CSV to be
    # byte-identical to the offline scis_impute output.
    SMOKE="$(mktemp -d)"
    trap 'rm -rf "$SMOKE"' EXIT
    ./build/examples/scis_datagen --dataset Trial --scale 0.005 \
      --output "$SMOKE/tiny.csv" >/dev/null
    ./build/examples/scis_impute --input "$SMOKE/tiny.csv" \
      --output "$SMOKE/offline.csv" --method SCIS-GAIN --epochs 2 --n0 32 \
      --seed 3 --save_params "$SMOKE/model.ckpt" \
      --save_params_bin "$SMOKE/model.bin" >/dev/null
    ./build/examples/scis_serve --params "$SMOKE/model.bin" --shards 2 \
      --port 0 --port_file "$SMOKE/serve.port" &
    SERVE_PID=$!
    for _ in $(seq 50); do
      [ -s "$SMOKE/serve.port" ] && break
      sleep 0.1
    done
    ./build/examples/scis_client --port_file "$SMOKE/serve.port" --ping \
      --input "$SMOKE/tiny.csv" --output "$SMOKE/served.csv" \
      --rows_per_request 3 >/dev/null
    ./build/examples/scis_client --port_file "$SMOKE/serve.port" \
      --shutdown >/dev/null
    wait "$SERVE_PID"
    cmp "$SMOKE/offline.csv" "$SMOKE/served.csv"
    echo "serve loopback smoke: OK (2 shards, v3 mmap ckpt, served == offline)"

    # Perf smoke: the kernel bench sweep must run to completion and emit a
    # parseable json (quick mode — small sizes, short timing windows; the
    # committed baseline in bench/BENCH_kernels.json is full mode).
    ./build/bench/micro_kernels --bench-json="$SMOKE/bench.json" --quick \
      >/dev/null
    python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
assert d['schema']=='scis-bench-kernels-v1' and d['kernels'], d" \
      "$SMOKE/bench.json"
    echo "kernel bench smoke: OK ($(python3 -c "import json,sys; \
print(len(json.load(open(sys.argv[1]))['kernels']))" "$SMOKE/bench.json") kernels)"

    # Index perf smoke: the ANN build/query sweep must complete, stay
    # bit-identical across 1/2/4 threads, and emit a parseable json (quick
    # mode; the committed full-mode baseline is bench/BENCH_index.json).
    ./build/bench/index_build_query --quick --queries 200 \
      --bench-json="$SMOKE/bench_index.json" >/dev/null
    python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
assert d['schema']=='scis-bench-index-v1' and d['sweep'], d; \
assert all(p['bit_identical_1_2_4_threads'] for p in d['sweep']), d" \
      "$SMOKE/bench_index.json"
    echo "index bench smoke: OK ($(python3 -c "import json,sys; \
print(len(json.load(open(sys.argv[1]))['sweep']))" "$SMOKE/bench_index.json") sweep points)"

    # Sinkhorn scaling smoke: the dense-vs-low-rank sweep must complete,
    # the low-rank arm must stay bit-identical across 1/2/4 threads, and
    # both solvers must agree on the objective within the 1e-2 relative
    # budget at every sweep point (quick mode; the committed full-mode
    # baseline with the 20k-row >=5x speedup is bench/BENCH_sinkhorn.json).
    ./build/bench/sinkhorn_scale --quick \
      --bench-json="$SMOKE/bench_sinkhorn.json" >/dev/null
    python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
assert d['schema']=='scis-bench-sinkhorn-v1' and d['sweep'], d; \
assert all(p['bit_identical_1_2_4_threads'] for p in d['sweep']), d; \
assert all(p['rel_gap'] <= 1e-2 for p in d['sweep']), d" \
      "$SMOKE/bench_sinkhorn.json"
    echo "sinkhorn bench smoke: OK ($(python3 -c "import json,sys; \
print(len(json.load(open(sys.argv[1]))['sweep']))" "$SMOKE/bench_sinkhorn.json") sweep points, dense/low-rank agree)"

    # Committed Sinkhorn baseline sanity: the checked-in full-mode sweep
    # must parse and hold the acceptance bar (>=5x single-thread speedup at
    # the largest n, objective gap <= 1e-2 everywhere, bit-identical).
    python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
assert d['schema']=='scis-bench-sinkhorn-v1' and d['mode']=='full', d; \
assert all(p['bit_identical_1_2_4_threads'] for p in d['sweep']), d; \
assert all(p['rel_gap'] <= 1e-2 for p in d['sweep']), d; \
big=max(d['sweep'], key=lambda p: p['n']); \
assert big['n'] >= 20000 and big['speedup_single_thread'] >= 5.0, big" \
      bench/BENCH_sinkhorn.json
    echo "sinkhorn baseline: OK (bench/BENCH_sinkhorn.json holds the 5x/1e-2 bar)"

    # Train fast-path smoke: both arms of the training-step bench must run,
    # the fast path must train to bit-identical weights (vs the vendored
    # pre-fast-path engine, and across 1/2/4 threads), with zero steady-state
    # tape-pool misses (quick mode; the committed full-mode baseline is
    # bench/BENCH_train.json).
    ./build/bench/train_throughput --quick \
      --bench-json="$SMOKE/bench_train.json" >/dev/null
    python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
assert d['schema']=='scis-bench-train-v1' and d['configs'], d; \
assert all(c['weights_match_baseline'] for c in d['configs']), d; \
assert all(c['bit_identical_1_2_4_threads'] for c in d['configs']), d; \
assert all(c['pool_misses_after_warmup'] == 0 for c in d['configs']), d" \
      "$SMOKE/bench_train.json"
    echo "train bench smoke: OK ($(python3 -c "import json,sys; \
print(len(json.load(open(sys.argv[1]))['configs']))" "$SMOKE/bench_train.json") configs, weights bit-match old engine)"

    # Committed train baseline sanity: the checked-in full-mode run must
    # parse and hold the acceptance bar (>=2x single-thread step throughput
    # on every config, zero pool misses, bitwise-equal weights).
    python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
assert d['schema']=='scis-bench-train-v1' and d['mode']=='full', d; \
assert all(c['speedup_single_thread'] >= 2.0 for c in d['configs']), d; \
assert all(c['weights_match_baseline'] for c in d['configs']), d; \
assert all(c['bit_identical_1_2_4_threads'] for c in d['configs']), d; \
assert all(c['pool_misses_after_warmup'] == 0 for c in d['configs']), d" \
      bench/BENCH_train.json
    echo "train baseline: OK (bench/BENCH_train.json holds the 2x bar on every config)"

    # Serve perf smoke: the connections x shards TCP sweep must complete,
    # every cell must be bit-identical to the offline engine, and the json
    # must parse (quick mode; the committed full-mode baseline is
    # bench/BENCH_serve.json).
    ./build/bench/serve_latency --quick \
      --bench-json="$SMOKE/bench_serve.json" >/dev/null
    python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
assert d['schema']=='scis-bench-serve-v1' and d['sweep'], d; \
assert all(p['bit_identical'] for p in d['sweep']), d" \
      "$SMOKE/bench_serve.json"
    echo "serve bench smoke: OK ($(python3 -c "import json,sys; \
print(len(json.load(open(sys.argv[1]))['sweep']))" "$SMOKE/bench_serve.json") sweep points, all bit-identical)"

    # Continuous-learning loop smoke: the scis_lifecycle demo runs the full
    # feed -> SSE drift check -> retrain-at-n* -> hot-swap loop against a
    # live 2-shard server at 1/2/4 worker threads and exits non-zero unless
    # every run is bit-identical with zero dropped or failed requests.
    ./build/examples/scis_lifecycle --workdir "$SMOKE/lifecycle" \
      --report-out "$SMOKE/lifecycle_report.json" >/dev/null
    python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
cfg=d['config']; \
assert cfg['bit_identical_1_2_4_threads'] is True, cfg; \
assert cfg['generation'] == 1 and cfg['n_star'] > 0, cfg" \
      "$SMOKE/lifecycle_report.json"
    echo "lifecycle loop smoke: OK (drift -> retrain -> swap, bit-identical at 1/2/4 threads)"

    # Lifecycle perf smoke: the store/controller sweep must complete with a
    # published generation at every point and emit a parseable json (quick
    # mode; the committed full-mode baseline is bench/BENCH_lifecycle.json).
    ./build/bench/lifecycle_loop --quick \
      --bench-json="$SMOKE/bench_lifecycle.json" >/dev/null
    python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
assert d['schema']=='scis-bench-lifecycle-v1' and d['sweep'], d; \
assert all(p['swapped'] and p['n_star'] > 0 for p in d['sweep']), d" \
      "$SMOKE/bench_lifecycle.json"
    echo "lifecycle bench smoke: OK ($(python3 -c "import json,sys; \
print(len(json.load(open(sys.argv[1]))['sweep']))" "$SMOKE/bench_lifecycle.json") sweep points, all swapped)"

    # Committed lifecycle baseline sanity: the checked-in full-mode sweep
    # must parse and show the loop completing (swap published) everywhere.
    python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
assert d['schema']=='scis-bench-lifecycle-v1' and d['mode']=='full', d; \
assert all(p['swapped'] and p['n_star'] > 0 for p in d['sweep']), d" \
      bench/BENCH_lifecycle.json
    echo "lifecycle baseline: OK (bench/BENCH_lifecycle.json, all points swapped)"
    ;;
  nightly)
    # High iteration counts: the nightly executable scales its property
    # loops with SCIS_NIGHTLY_ITERS (default 200 keeps plain `ctest` fast).
    export SCIS_NIGHTLY_ITERS="${SCIS_NIGHTLY_ITERS:-2000}"
    cmake --preset default >/dev/null
    cmake --build --preset default -j "$JOBS"
    ctest --preset nightly -j "$JOBS"
    for SAN in tsan asan; do
      cmake --preset "$SAN" >/dev/null
      cmake --build --preset "$SAN" -j "$JOBS"
      ctest --preset "nightly-$SAN" -j "$JOBS"
    done
    ;;
  *)
    echo "usage: scripts/ci.sh [tier1|nightly]" >&2
    exit 2
    ;;
esac
